package trust

import (
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
	"lbsq/internal/p2p"
)

// world is a tiny ground truth for screening tests.
var worldPOIs = []broadcast.POI{
	{ID: 1, Pos: geom.Pt(1, 1)},
	{ID: 2, Pos: geom.Pt(3, 3)},
	{ID: 3, Pos: geom.Pt(5, 5)},
	{ID: 4, Pos: geom.Pt(7, 7)},
	{ID: 5, Pos: geom.Pt(9, 9)},
}

func oracle(r geom.Rect) []broadcast.POI {
	var out []broadcast.POI
	for _, p := range worldPOIs {
		if r.Contains(p.Pos) {
			out = append(out, p)
		}
	}
	return out
}

// honest builds a truthful contribution for the region.
func honest(peer int, r geom.Rect) Contribution {
	return Contribution{Peer: peer, VR: r, POIs: oracle(r)}
}

// lying builds a contribution with one fabricated POI inside the region.
func lying(peer int, r geom.Rect, at geom.Point) Contribution {
	c := honest(peer, r)
	c.POIs = append(append([]broadcast.POI(nil), c.POIs...),
		broadcast.POI{ID: 1000 + int64(peer), Pos: at})
	return c
}

func newTestEngine(t *testing.T, cfg Config, bs *p2p.BreakerSet) *Engine {
	t.Helper()
	e := NewEngine(7, cfg, bs)
	if e == nil {
		t.Fatal("NewEngine returned nil for enabled config")
	}
	return e
}

func TestNilEnginePassthrough(t *testing.T) {
	var e *Engine
	contribs := []Contribution{honest(0, geom.NewRect(0, 0, 4, 4))}
	out, rep := e.Screen(contribs, oracle, -1)
	if len(out) != 1 || out[0].Tainted || out[0].VR != contribs[0].VR {
		t.Fatalf("nil engine altered contributions: %+v", out)
	}
	if rep != (Report{}) {
		t.Fatalf("nil engine reported activity: %+v", rep)
	}
	if e.Enabled() || e.Quarantined(0) || e.Vouched(0) || e.Counters() != (Counters{}) {
		t.Fatal("nil engine accessors not inert")
	}
	if NewEngine(1, Config{}, nil) != nil {
		t.Fatal("NewEngine built an engine for a disabled config")
	}
}

func TestConfigNormalizeValidate(t *testing.T) {
	c := Config{AuditRate: 0.5}.Normalized()
	if c.MaxAuditsPerQuery != DefaultMaxAuditsPerQuery ||
		c.VouchCycles != DefaultVouchCycles ||
		c.QuarantineCycles != DefaultQuarantineCycles ||
		c.ConvictStrikes != DefaultConvictStrikes ||
		c.AuditBaseSlots != DefaultAuditBaseSlots ||
		c.AuditPOIsPerSlot != DefaultAuditPOIsPerSlot {
		t.Fatalf("Normalized missed defaults: %+v", c)
	}
	if got := (Config{AuditRate: 1.8}).Normalized().AuditRate; got != 1 {
		t.Fatalf("Normalized did not clamp AuditRate: %v", got)
	}
	if err := (Config{AuditRate: -0.1}).Validate(); err == nil {
		t.Fatal("Validate accepted negative AuditRate")
	}
	if err := (Config{AuditRate: 0.3}).Validate(); err != nil {
		t.Fatalf("Validate rejected valid config: %v", err)
	}
}

// An audited honest peer becomes vouched; its later contributions are
// untainted while unaudited strangers stay tainted.
func TestAuditVouchesHonestPeer(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 1}, nil)
	r := geom.NewRect(0, 0, 4, 4)
	out, rep := e.Screen([]Contribution{honest(0, r)}, oracle, -1)
	if rep.Audits != 1 || rep.AuditFailures != 0 {
		t.Fatalf("audit counts = %+v, want 1 pass", rep)
	}
	if len(out) != 1 || out[0].Tainted {
		t.Fatalf("audited honest contribution still tainted: %+v", out)
	}
	if !e.Vouched(0) {
		t.Fatal("peer not vouched after passed audit")
	}
	if rep.AuditSlots < DefaultAuditBaseSlots {
		t.Fatalf("audit slots %d below base cost", rep.AuditSlots)
	}
}

// An unaudited peer's contribution is tainted (demoted to the
// probabilistic path) but not dropped.
func TestUnvouchedPeerIsTainted(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 0.0001}, nil)
	r := geom.NewRect(0, 0, 4, 4)
	out, rep := e.Screen([]Contribution{honest(0, r)}, oracle, -1)
	if rep.Audits != 0 {
		t.Skip("improbable audit draw hit")
	}
	if len(out) != 1 || !out[0].Tainted || rep.Tainted != 1 {
		t.Fatalf("unvouched contribution not tainted: %+v rep=%+v", out, rep)
	}
}

// Self contributions are never audited and never tainted.
func TestSelfAlwaysTrusted(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 1}, nil)
	out, rep := e.Screen([]Contribution{honest(Self, geom.NewRect(0, 0, 4, 4))}, oracle, -1)
	if rep.Audits != 0 {
		t.Fatalf("self contribution audited: %+v", rep)
	}
	if len(out) != 1 || out[0].Tainted {
		t.Fatalf("self contribution tainted: %+v", out)
	}
	if !e.Vouched(Self) || e.Quarantined(Self) {
		t.Fatal("self accessors wrong")
	}
}

// A failed audit convicts: contribution dropped, peer quarantined,
// breaker forced open.
func TestAuditFailureConvicts(t *testing.T) {
	bs := p2p.NewBreakerSet(p2p.BreakerConfig{Threshold: 3})
	e := newTestEngine(t, Config{AuditRate: 1}, bs)
	r := geom.NewRect(0, 0, 4, 4)
	out, rep := e.Screen([]Contribution{lying(0, r, geom.Pt(2, 2))}, oracle, -1)
	if rep.Audits != 1 || rep.AuditFailures != 1 || rep.Convictions != 1 {
		t.Fatalf("conviction counts wrong: %+v", rep)
	}
	if len(out) != 0 {
		t.Fatalf("convicted contribution survived: %+v", out)
	}
	if !e.Quarantined(0) {
		t.Fatal("convicted peer not quarantined")
	}
	if bs.State(0) != p2p.BreakerOpen {
		t.Fatalf("conviction did not force the breaker open: %v", bs.State(0))
	}
	if rep.QuarantinedArea != r.Area() {
		t.Fatalf("QuarantinedArea = %v, want %v", rep.QuarantinedArea, r.Area())
	}
	c := e.Counters()
	if c.AuditsRun != 1 || c.AuditFailures != 1 || c.PeersQuarantined != 1 {
		t.Fatalf("cumulative counters wrong: %+v", c)
	}
}

// Omission is convicted just like fabrication: the claimed set must
// exactly match the oracle.
func TestAuditCatchesOmission(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 1}, nil)
	r := geom.NewRect(0, 0, 6, 6)
	c := honest(0, r)
	c.POIs = c.POIs[:len(c.POIs)-1] // hide one real POI
	_, rep := e.Screen([]Contribution{c}, oracle, -1)
	if rep.AuditFailures != 1 {
		t.Fatalf("omission not convicted: %+v", rep)
	}
}

// Overlapping contributions that disagree on the overlap conflict: both
// peers struck and unvouched, the overlap quarantined out of both.
func TestCrossValidationConflict(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 0.0001}, nil)
	a := honest(0, geom.NewRect(0, 0, 6, 6))
	b := lying(1, geom.NewRect(4, 4, 10, 10), geom.Pt(5, 4.5)) // fake POI in the overlap
	out, rep := e.Screen([]Contribution{a, b}, oracle, -1)
	if rep.Conflicts != 1 {
		t.Fatalf("conflict not detected: %+v", rep)
	}
	overlap := geom.NewRect(4, 4, 6, 6)
	for _, r := range out {
		if ov, ok := r.VR.Intersect(overlap); ok && !ov.Empty() {
			t.Fatalf("quarantined overlap still in piece %+v", r)
		}
		if !r.Tainted {
			t.Fatalf("conflicted peer's piece untainted: %+v", r)
		}
		for _, p := range r.POIs {
			if !r.VR.Contains(p.Pos) {
				t.Fatalf("POI %v outside its piece %v", p, r.VR)
			}
			if overlap.Contains(p.Pos) {
				t.Fatalf("POI %v inside quarantined overlap survived", p)
			}
		}
	}
	if e.QuarantinedRects() != 1 {
		t.Fatalf("quarantine set size = %d, want 1", e.QuarantinedRects())
	}
	if rep.QuarantinedArea != overlap.Area() {
		t.Fatalf("QuarantinedArea = %v, want %v", rep.QuarantinedArea, overlap.Area())
	}
}

// A conflict between a vouched peer and an unvouched accuser strikes
// only the accuser: the vouch is audit-backed ground-truth evidence, so
// one lying neighbor can neither poison nor suppress an honest peer's
// trust, and the vouched claim stands unquarantined.
func TestVouchedSurvivesConflict(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 1, ConvictStrikes: 99}, nil)
	r := geom.NewRect(0, 0, 6, 6)
	e.Screen([]Contribution{honest(0, r)}, oracle, -1)
	if !e.Vouched(0) {
		t.Fatal("setup: peer 0 not vouched")
	}
	// Next screen: audit budget 0 so no one is re-audited; the liar
	// conflicts with vouched peer 0.
	a := honest(0, r)
	b := lying(1, geom.NewRect(4, 4, 10, 10), geom.Pt(5, 5.5))
	out, rep := e.Screen([]Contribution{a, b}, oracle, 0)
	if rep.Conflicts != 1 {
		t.Fatalf("no conflict: %+v", rep)
	}
	if !e.Vouched(0) {
		t.Fatal("vouched peer lost its vouch to an unvouched accuser")
	}
	if e.Vouched(1) {
		t.Fatal("accuser vouched")
	}
	if e.QuarantinedRects() != 0 || rep.QuarantinedArea != 0 {
		t.Fatalf("one-sided conflict quarantined the overlap: rects=%d area=%v",
			e.QuarantinedRects(), rep.QuarantinedArea)
	}
	for _, res := range out {
		if res.Peer == 0 && (res.Tainted || res.VR != r) {
			t.Fatalf("vouched claim did not stand whole: %+v", res)
		}
	}
}

// A passed audit forgives standing strikes: a peer struck by unvouched
// accusers is restored to full trust once the ground truth testifies
// for it.
func TestAuditForgivesStrikes(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 1, ConvictStrikes: 99, MaxAuditsPerQuery: 1}, nil)
	a := honest(0, geom.NewRect(0, 0, 6, 6))
	b := lying(1, geom.NewRect(4, 4, 10, 10), geom.Pt(5, 4.4))
	// Budget 0: no audits, both claimants unvouched, both struck.
	e.Screen([]Contribution{a, b}, oracle, 0)
	if e.Vouched(0) {
		t.Fatal("setup: struck peer vouched")
	}
	// Peer 0 alone passes its audit: vouched, strikes forgiven.
	e.Screen([]Contribution{honest(0, geom.NewRect(0, 0, 6, 6))}, oracle, -1)
	if !e.Vouched(0) {
		t.Fatal("passed audit did not restore a struck peer")
	}
}

// ConvictStrikes accumulated conflicts convict without any audit.
func TestStrikesConvict(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 0.0001, ConvictStrikes: 2}, nil)
	for i := 0; i < 2; i++ {
		a := honest(0, geom.NewRect(0, 0, 6, 6))
		b := lying(1, geom.NewRect(4, 4, 10, 10), geom.Pt(5, 4.2))
		e.Screen([]Contribution{a, b}, oracle, 0)
	}
	if !e.Quarantined(1) {
		t.Fatal("liar not convicted after repeated conflicts")
	}
	if e.Counters().PeersQuarantined < 1 {
		t.Fatalf("PeersQuarantined = %d", e.Counters().PeersQuarantined)
	}
}

// Quarantine decays: after QuarantineCycles screens the peer is paroled
// (its contributions flow again, tainted until re-vouched).
func TestQuarantineDecays(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 1, QuarantineCycles: 3}, nil)
	r := geom.NewRect(0, 0, 4, 4)
	e.Screen([]Contribution{lying(0, r, geom.Pt(2, 2))}, oracle, -1)
	if !e.Quarantined(0) {
		t.Fatal("liar not quarantined")
	}
	for i := 0; i < 3; i++ {
		out, _ := e.Screen([]Contribution{honest(0, r)}, oracle, 0)
		if e.Quarantined(0) && len(out) != 0 {
			t.Fatal("quarantined contribution survived")
		}
	}
	if e.Quarantined(0) {
		t.Fatal("quarantine did not decay")
	}
	out, _ := e.Screen([]Contribution{honest(0, r)}, oracle, 0)
	if len(out) != 1 || !out[0].Tainted {
		t.Fatalf("paroled peer should contribute tainted pieces: %+v", out)
	}
}

// The slot budget gates audits: an unaffordable audit is skipped (the
// contribution stays tainted rather than blowing the deadline).
func TestAuditBudget(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 1}, nil)
	r := geom.NewRect(0, 0, 4, 4)
	out, rep := e.Screen([]Contribution{honest(0, r)}, oracle, 1) // cost ≥ 2
	if rep.Audits != 0 || rep.AuditSlots != 0 {
		t.Fatalf("audit ran over budget: %+v", rep)
	}
	if len(out) != 1 || !out[0].Tainted {
		t.Fatalf("unaudited contribution should be tainted: %+v", out)
	}
	// Unlimited budget (-1) always affords the audit.
	_, rep = e.Screen([]Contribution{honest(0, r)}, oracle, -1)
	if rep.Audits != 1 {
		t.Fatalf("unlimited budget skipped the audit: %+v", rep)
	}
}

// MaxAuditsPerQuery caps the per-screen audit count.
func TestAuditCap(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 1, MaxAuditsPerQuery: 2}, nil)
	var contribs []Contribution
	for i := 0; i < 6; i++ {
		contribs = append(contribs, honest(i, geom.NewRect(0, 0, 4, 4)))
	}
	_, rep := e.Screen(contribs, oracle, -1)
	if rep.Audits != 2 {
		t.Fatalf("audits = %d, want cap 2", rep.Audits)
	}
}

// Cross-pool dedup: a POI vouched by an untainted contribution is
// dropped from tainted pieces (core's dedup precondition).
func TestCrossPoolDedup(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 1, MaxAuditsPerQuery: 1}, nil)
	r := geom.NewRect(0, 0, 4, 4)
	// Screen 1: vouch peer 0.
	e.Screen([]Contribution{honest(0, r)}, oracle, -1)
	// Screen 2: audit cap 1 hits peer 0 draw first; peer 1 shares the
	// same region unaudited.
	out, _ := e.Screen([]Contribution{honest(0, r), honest(1, r)}, oracle, 0)
	var trustedIDs, taintedIDs []int64
	for _, res := range out {
		for _, p := range res.POIs {
			if res.Tainted {
				taintedIDs = append(taintedIDs, p.ID)
			} else {
				trustedIDs = append(trustedIDs, p.ID)
			}
		}
	}
	for _, tid := range taintedIDs {
		for _, uid := range trustedIDs {
			if tid == uid {
				t.Fatalf("POI %d present in both trust pools", tid)
			}
		}
	}
}

// Two regions of one peer never conflict with each other.
func TestSamePeerRegionsDoNotConflict(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 0.0001}, nil)
	a := honest(0, geom.NewRect(0, 0, 6, 6))
	b := honest(0, geom.NewRect(4, 4, 10, 10))
	b.POIs = append(append([]broadcast.POI(nil), b.POIs...),
		broadcast.POI{ID: 999, Pos: geom.Pt(5, 5.2)})
	_, rep := e.Screen([]Contribution{a, b}, oracle, 0)
	if rep.Conflicts != 0 {
		t.Fatalf("same-peer regions conflicted: %+v", rep)
	}
}

// The byzantine invariant the whole subsystem rests on: a peer whose
// every claim is materially false can never become vouched, no matter
// how many screens run.
func TestByzantineNeverVouched(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 0.5, QuarantineCycles: 2}, nil)
	r := geom.NewRect(0, 0, 6, 6)
	for i := 0; i < 200; i++ {
		e.Screen([]Contribution{lying(3, r, geom.Pt(2, 2.5))}, oracle, -1)
		if e.Vouched(3) {
			t.Fatalf("byzantine peer vouched at screen %d", i)
		}
	}
	if e.Counters().AuditFailures == 0 {
		t.Fatal("no audit ever sampled the liar")
	}
}

// Determinism: identical seeds and call sequences produce identical
// screening decisions and counters.
func TestScreenDeterministic(t *testing.T) {
	run := func() ([]Result, Counters) {
		e := NewEngine(99, Config{AuditRate: 0.4}, nil)
		var last []Result
		for i := 0; i < 50; i++ {
			contribs := []Contribution{
				honest(0, geom.NewRect(0, 0, 6, 6)),
				lying(1, geom.NewRect(4, 4, 10, 10), geom.Pt(5, 4.7)),
				honest(2, geom.NewRect(6, 6, 10, 10)),
			}
			last, _ = e.Screen(contribs, oracle, 40)
		}
		return last, e.Counters()
	}
	r1, c1 := run()
	r2, c2 := run()
	if c1 != c2 {
		t.Fatalf("counters diverged:\n%+v\n%+v", c1, c2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("result lengths diverged: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Peer != r2[i].Peer || r1[i].VR != r2[i].VR ||
			r1[i].Tainted != r2[i].Tainted || len(r1[i].POIs) != len(r2[i].POIs) {
			t.Fatalf("result %d diverged:\n%+v\n%+v", i, r1[i], r2[i])
		}
	}
}

// A boundary POI shared by adjacent subtraction pieces lands in exactly
// one piece.
func TestBoundaryPOINotDuplicated(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 0.0001}, nil)
	// Conflict quarantines the central overlap; peer 2's region is then
	// split around it, and its POI at the piece boundary must appear once.
	a := honest(0, geom.NewRect(3, 3, 5, 5))
	b := lying(1, geom.NewRect(4, 4, 6, 6), geom.Pt(4.5, 4.5))
	mid := Contribution{Peer: 2, VR: geom.NewRect(0, 0, 10, 10), POIs: []broadcast.POI{
		{ID: 77, Pos: geom.Pt(4, 2)}, // on a subtraction grid line
		{ID: 78, Pos: geom.Pt(1, 1)},
	}}
	out, rep := e.Screen([]Contribution{a, b, mid}, oracle, 0)
	if rep.Conflicts == 0 {
		t.Fatal("setup: no conflict")
	}
	seen := 0
	for _, r := range out {
		if r.Peer != 2 {
			continue
		}
		for _, p := range r.POIs {
			if p.ID == 77 {
				seen++
			}
		}
	}
	if seen != 1 {
		t.Fatalf("boundary POI appeared %d times, want 1", seen)
	}
}

// A stale (superseded-epoch) contribution that disagrees with a fresh
// one is classified as reconciliation work, not lying: the conflict is
// amnestied (StaleConflicts, not Conflicts), neither peer is struck,
// and no overlap is quarantined. This keeps honest peers with outdated
// caches from being convicted under POI churn.
func TestStaleConflictAmnesty(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 0.0001, ConvictStrikes: 1}, nil)
	fresh := honest(0, geom.NewRect(0, 0, 6, 6))
	outdated := honest(1, geom.NewRect(4, 4, 10, 10))
	// The stale peer's cache predates a POI insert at (5, 4.5): its list
	// disagrees with the fresh peer's in the overlap.
	outdated.POIs = append(append([]broadcast.POI(nil), outdated.POIs...),
		broadcast.POI{ID: 500, Pos: geom.Pt(5, 4.5)})
	outdated.Stale = true
	out, rep := e.Screen([]Contribution{fresh, outdated}, oracle, -1)
	if rep.Conflicts != 0 || rep.StaleConflicts != 1 {
		t.Fatalf("stale disagreement misclassified: %+v", rep)
	}
	if c := e.Counters(); c.ConflictsDetected != 0 || c.StaleVerdicts != 1 {
		t.Fatalf("counters misclassified stale verdict: %+v", c)
	}
	if e.QuarantinedRects() != 0 || rep.QuarantinedArea != 0 {
		t.Fatal("stale conflict quarantined an overlap")
	}
	if e.Quarantined(0) || e.Quarantined(1) {
		t.Fatal("stale conflict convicted a peer")
	}
	// The stale claim must still come through demoted, never exact.
	for _, r := range out {
		if r.Peer == 1 && !r.Tainted {
			t.Fatalf("stale contribution passed untainted: %+v", r)
		}
	}
}

// Stale contributions are exempt from spot audits: the region is known
// to be outdated, so an audit "failure" against current ground truth
// proves nothing about the peer's honesty (and must not convict it).
func TestStaleContributionNeverAudited(t *testing.T) {
	e := newTestEngine(t, Config{AuditRate: 1, ConvictStrikes: 1}, nil)
	c := honest(0, geom.NewRect(0, 0, 6, 6))
	// The outdated cache is missing POI 2 — an audit would see an
	// omission and convict.
	var kept []broadcast.POI
	for _, p := range c.POIs {
		if p.ID != 2 {
			kept = append(kept, p)
		}
	}
	c.POIs = kept
	c.Stale = true
	_, rep := e.Screen([]Contribution{c}, oracle, -1)
	if rep.Audits != 0 || rep.AuditFailures != 0 {
		t.Fatalf("stale contribution audited: %+v", rep)
	}
	if e.Quarantined(0) {
		t.Fatal("stale contribution convicted its peer")
	}
	if cn := e.Counters(); cn.AuditsRun != 0 || cn.AuditFailures != 0 {
		t.Fatalf("audit counters moved: %+v", cn)
	}
}
