package sim

import "lbsq/internal/metrics"

// Report is the machine-readable run record the `-json` flag of
// lbsq-sim (and every in-process bench cell) emits: the resolved
// configuration, the full Stats struct, and the derived rates the human
// report prints. One compact object per line, so appending runs
// produces valid JSONL (see `make bench`).
//
// BenchSchema versions the row format: consumers should skip rows whose
// schema they do not understand. Version 1 was the pre-schema format
// (no bench_schema field); version 2 added the field itself, with every
// other key unchanged, so v1 consumers keep working on v2 rows.
type Report struct {
	BenchSchema     int     `json:"bench_schema"`
	Set             string  `json:"set"`
	Kind            string  `json:"kind"`
	Seed            int64   `json:"seed"`
	AreaMiles       float64 `json:"area_miles"`
	DurationHours   float64 `json:"duration_hours"`
	MHNumber        int     `json:"mh_number"`
	POINumber       int     `json:"poi_number"`
	QueryRate       float64 `json:"query_rate"`
	TxRangeMeters   float64 `json:"tx_range_meters"`
	CacheSize       int     `json:"cache_size"`
	K               int     `json:"k"`
	WindowPct       float64 `json:"window_pct"`
	Faults          any     `json:"faults"`
	DeadlineSlots   int     `json:"deadline_slots"`
	BreakerThresh   int     `json:"breaker_threshold"`
	BreakerCooldown int64   `json:"breaker_cooldown"`
	// AuditRate is the trust-layer knob (internal/trust); omitted when
	// zero so zero-knob rows keep the earlier schema byte-for-byte (the
	// byzantine knobs live inside Faults, omitempty likewise).
	AuditRate float64 `json:"audit_rate,omitempty"`
	// Consistency-layer knobs (DESIGN.md §12), all omitted when zero or
	// false under the same contract. Rows carrying any of them report
	// BenchSchemaConsistency.
	UpdateRate  float64 `json:"update_rate,omitempty"`
	IRPeriodSec float64 `json:"ir_period_sec,omitempty"`
	IRWindow    int     `json:"ir_window,omitempty"`
	VRTTLSec    float64 `json:"vr_ttl_sec,omitempty"`
	IRDiscard   bool    `json:"ir_discard,omitempty"`
	// DegradedMode arms the fallback-ladder planner (DESIGN.md §13); the
	// burst/blackout knobs ride inside Faults (omitempty likewise). Rows
	// carrying any channel-impairment knob report BenchSchemaBurst.
	DegradedMode bool `json:"degraded_mode,omitempty"`
	// Continuous-query knobs (DESIGN.md §15), omitted when zero/false
	// under the same contract. Rows carrying them report
	// BenchSchemaContinuous.
	ContinuousRate  float64 `json:"continuous_rate,omitempty"`
	ContinuousNaive bool    `json:"continuous_naive,omitempty"`
	// Flash-crowd and overload-control knobs (DESIGN.md §16), omitted
	// when zero/false under the same contract. Rows carrying any of them
	// report BenchSchemaOverload.
	CrowdRate           float64 `json:"crowd_rate,omitempty"`
	CrowdRadiusMiles    float64 `json:"crowd_radius_miles,omitempty"`
	CrowdCenterXMiles   float64 `json:"crowd_center_x_miles,omitempty"`
	CrowdCenterYMiles   float64 `json:"crowd_center_y_miles,omitempty"`
	CrowdStartSec       float64 `json:"crowd_start_sec,omitempty"`
	CrowdDurationSec    float64 `json:"crowd_duration_sec,omitempty"`
	PeerQueueCap        int     `json:"peer_queue_cap,omitempty"`
	RetryBudget         int     `json:"retry_budget,omitempty"`
	AdmissionRate       float64 `json:"admission_rate,omitempty"`
	AdmissionBurst      int     `json:"admission_burst,omitempty"`
	Governed            bool    `json:"governed,omitempty"`
	GovernorFloor       float64 `json:"governor_floor,omitempty"`
	CoalesceRadiusMiles float64 `json:"coalesce_radius_miles,omitempty"`
	SelfCheck           bool    `json:"self_check_passed"`
	Stats               Stats   `json:"stats"`
	Derived             Derived `json:"derived"`
	// Metrics is the final registry snapshot of a metrics-enabled run
	// (World.Metrics().Snapshot()). Nil — and absent from the encoding —
	// when the Metrics knob is off, preserving byte-identity with
	// pre-metrics report rows.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
	// WallSeconds is the host wall-clock cost of the run. It is the one
	// nondeterministic field; byte-identity comparisons must zero it
	// first (see internal/perf).
	WallSeconds float64 `json:"wall_seconds"`
}

// BenchSchemaVersion is the Report row format emitted by this build for
// runs with the consistency layer off. BenchSchemaConsistency marks rows
// that carry the consistency knob fields and counters (v2 rows are a
// strict subset, so v2 consumers keep working if they ignore unknown
// keys — the bump is a courtesy signal, same convention as v1→v2).
// BenchSchemaBurst marks rows carrying the channel-impairment knobs
// (Gilbert–Elliott burst fading, blackout windows, degraded-mode
// planner) and their counters — the same strict-superset courtesy bump
// as v2→v3.
// BenchSchemaContinuous marks rows carrying the continuous-query knobs
// (standing subscriptions with safe-region maintenance) and their
// counters — the same strict-superset courtesy bump as v3→v4.
// BenchSchemaOverload marks rows carrying the flash-crowd and
// overload-control knobs (crowd generator, peer backpressure, admission
// control, retry budgets, load governor, coalescing) and their counters
// — the same strict-superset courtesy bump as v4→v5.
const (
	BenchSchemaVersion     = 2
	BenchSchemaConsistency = 3
	BenchSchemaBurst       = 4
	BenchSchemaContinuous  = 5
	BenchSchemaOverload    = 6
)

// Derived holds the rates the human-readable report prints, precomputed
// so JSONL consumers need no knowledge of the Stats accessor methods.
type Derived struct {
	VerifiedPct            float64 `json:"verified_pct"`
	ApproximatePct         float64 `json:"approximate_pct"`
	BroadcastPct           float64 `json:"broadcast_pct"`
	AvgPeers               float64 `json:"avg_peers"`
	AvgLatencySlots        float64 `json:"avg_latency_slots"`
	AvgTuningSlots         float64 `json:"avg_tuning_slots"`
	MeanSystemLatencySlots float64 `json:"mean_system_latency_slots"`
	AvgPeerBytes           float64 `json:"avg_peer_bytes"`
	FaultEvents            int64   `json:"fault_events"`
	ResilienceEvents       int64   `json:"resilience_events"`
	TrustEvents            int64   `json:"trust_events,omitempty"`
	ConsistencyEvents      int64   `json:"consistency_events,omitempty"`
	ChannelEvents          int64   `json:"channel_events,omitempty"`
	AnsweredInBudgetPct    float64 `json:"answered_in_budget_pct,omitempty"`
	ContinuousEvents       int64   `json:"continuous_events,omitempty"`
	ReverifyFraction       float64 `json:"reverify_fraction,omitempty"`
	OverloadEvents         int64   `json:"overload_events,omitempty"`
	GoodputPct             float64 `json:"goodput_pct,omitempty"`
}

// NewReport assembles the Report for a finished run.
func NewReport(p Params, stats Stats, selfChecked bool, wallSeconds float64) Report {
	schema := BenchSchemaVersion
	if p.UpdateRate > 0 || p.VRTTLSec > 0 {
		schema = BenchSchemaConsistency
	}
	if p.Faults.BurstEnabled() || p.Faults.BlackoutEnabled() || p.DegradedMode {
		schema = BenchSchemaBurst
	}
	if p.ContinuousRate > 0 {
		schema = BenchSchemaContinuous
	}
	if p.CrowdEnabled() || p.OverloadEnabled() {
		schema = BenchSchemaOverload
	}
	if p.UpdateRate > 0 {
		// Callers may pass pre-default Params; fill the consistency
		// defaults so armed rows record the period/window actually
		// simulated. Zero-knob rows are untouched.
		if p.IRPeriodSec == 0 {
			p.IRPeriodSec = 30
		}
		if p.IRWindow == 0 {
			p.IRWindow = 8
		}
	}
	// Same courtesy fill for the crowd/overload defaults (applyDefaults):
	// armed rows record the hotspot geometry and control levels actually
	// simulated; zero-knob rows are untouched.
	if p.CrowdRate > 0 {
		if p.CrowdRadiusMiles == 0 {
			p.CrowdRadiusMiles = p.AreaMiles / 10
		}
		if p.CrowdCenterXMiles == 0 {
			p.CrowdCenterXMiles = p.AreaMiles / 2
		}
		if p.CrowdCenterYMiles == 0 {
			p.CrowdCenterYMiles = p.AreaMiles / 2
		}
		if p.CrowdDurationSec == 0 {
			p.CrowdDurationSec = p.DurationHours * 3600 * 0.1
		}
		if p.CrowdStartSec == 0 {
			p.CrowdStartSec = p.DurationHours * 3600 * 0.5
		}
	}
	if p.AdmissionRate > 0 && p.AdmissionBurst == 0 {
		p.AdmissionBurst = 4
	}
	if p.Governed && p.GovernorFloor == 0 {
		p.GovernorFloor = 0.9
	}
	// GoodputPct is nonzero on every run (it partitions the outcomes), so
	// it only rides rows that carry the overload knobs — zero-knob rows
	// must stay byte-identical to the earlier schemas.
	goodput := 0.0
	if p.CrowdEnabled() || p.OverloadEnabled() {
		goodput = stats.GoodputPct()
	}
	return Report{
		BenchSchema:         schema,
		Set:                 p.Name,
		Kind:                p.Kind.String(),
		Seed:                p.Seed,
		AreaMiles:           p.AreaMiles,
		DurationHours:       p.DurationHours,
		MHNumber:            p.MHNumber,
		POINumber:           p.POINumber,
		QueryRate:           p.QueryRate,
		TxRangeMeters:       p.TxRangeMeters,
		CacheSize:           p.CacheSize,
		K:                   p.K,
		WindowPct:           p.WindowPct,
		Faults:              p.Faults,
		DeadlineSlots:       p.DeadlineSlots,
		BreakerThresh:       p.BreakerThreshold,
		BreakerCooldown:     p.BreakerCooldown,
		AuditRate:           p.AuditRate,
		UpdateRate:          p.UpdateRate,
		IRPeriodSec:         p.IRPeriodSec,
		IRWindow:            p.IRWindow,
		VRTTLSec:            p.VRTTLSec,
		IRDiscard:           p.IRDiscard,
		DegradedMode:        p.DegradedMode,
		ContinuousRate:      p.ContinuousRate,
		ContinuousNaive:     p.ContinuousNaive,
		CrowdRate:           p.CrowdRate,
		CrowdRadiusMiles:    p.CrowdRadiusMiles,
		CrowdCenterXMiles:   p.CrowdCenterXMiles,
		CrowdCenterYMiles:   p.CrowdCenterYMiles,
		CrowdStartSec:       p.CrowdStartSec,
		CrowdDurationSec:    p.CrowdDurationSec,
		PeerQueueCap:        p.PeerQueueCap,
		RetryBudget:         p.RetryBudget,
		AdmissionRate:       p.AdmissionRate,
		AdmissionBurst:      p.AdmissionBurst,
		Governed:            p.Governed,
		GovernorFloor:       p.GovernorFloor,
		CoalesceRadiusMiles: p.CoalesceRadiusMiles,
		SelfCheck:           selfChecked,
		Stats:               stats,
		Derived: Derived{
			VerifiedPct:            stats.VerifiedPct(),
			ApproximatePct:         stats.ApproximatePct(),
			BroadcastPct:           stats.BroadcastPct(),
			AvgPeers:               stats.AvgPeers(),
			AvgLatencySlots:        stats.AvgLatencySlots(),
			AvgTuningSlots:         stats.AvgTuningSlots(),
			MeanSystemLatencySlots: stats.MeanSystemLatencySlots(),
			AvgPeerBytes:           stats.AvgPeerBytes(),
			FaultEvents:            stats.FaultEvents(),
			ResilienceEvents:       stats.ResilienceEvents(),
			TrustEvents:            stats.TrustEvents(),
			ConsistencyEvents:      stats.ConsistencyEvents(),
			ChannelEvents:          stats.ChannelEvents(),
			AnsweredInBudgetPct:    stats.AnsweredInBudgetPct(),
			ContinuousEvents:       stats.ContinuousEvents(),
			ReverifyFraction:       stats.ReverifyFraction(),
			OverloadEvents:         stats.OverloadEvents(),
			GoodputPct:             goodput,
		},
		WallSeconds: wallSeconds,
	}
}
