// Package geom provides the planar computational geometry that underpins
// sharing-based spatial query processing: points, axis-aligned rectangles,
// circles, segments, and exact operations on unions of axis-aligned
// rectangles (boundary clearance, disjoint decomposition, coverage tests,
// and circle-intersection areas).
//
// Verified regions in the paper are MBRs, so the merged verified region
// (MVR) is always a union of axis-aligned rectangles. That lets this
// package replace the general MapOverlay polygon machinery of de Berg et
// al. with exact rectilinear algorithms while producing the same
// quantities the NNV algorithm needs: whether the query point lies inside
// the MVR, the distance from the query point to the nearest boundary edge
// (Lemma 3.1), and the area of an unverified region (Lemma 3.2).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane. Coordinates are in whatever linear
// unit the caller uses consistently (the simulator uses miles).
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Rect is a closed axis-aligned rectangle with Min.X <= Max.X and
// Min.Y <= Max.Y. The zero Rect is the degenerate rectangle at the origin.
type Rect struct {
	Min, Max Point
}

// NewRect builds a Rect from two opposite corners given in any order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{Min: Point{x1, y1}, Max: Point{x2, y2}}
}

// RectAround returns the square of half-side r centered at c; for r > 0 it
// is the MBR of the circle (c, r), the shape of a verified region built
// from an on-air kNN search range.
func RectAround(c Point, r float64) Rect {
	return Rect{Min: Point{c.X - r, c.Y - r}, Max: Point{c.X + r, c.Y + r}}
}

// Width returns the X extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the Y extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the centroid of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Empty reports whether r has zero area.
func (r Rect) Empty() bool {
	return r.Min.X >= r.Max.X || r.Min.Y >= r.Max.Y
}

// Valid reports whether Min <= Max on both axes.
func (r Rect) Valid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}

// Contains reports whether p lies in the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsStrict reports whether p lies in the open interior of r.
func (r Rect) ContainsStrict(p Point) bool {
	return p.X > r.Min.X && p.X < r.Max.X && p.Y > r.Min.Y && p.Y < r.Max.Y
}

// ContainsRect reports whether s is entirely inside r (closed containment).
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Intersect returns the intersection of r and s and whether it is
// non-degenerate (positive area).
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.Empty() {
		return Rect{}, false
	}
	return out, true
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Expand grows r by d on every side (shrinks for d < 0; the result may be
// invalid if shrunk past its center).
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Dist returns the minimum Euclidean distance from p to r; zero when p is
// inside r.
func (r Rect) Dist(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// MaxDist returns the maximum Euclidean distance from p to any point of r
// (attained at the farthest corner).
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// BoundaryDist returns the minimum distance from p to the boundary of r.
// Unlike Dist it is positive for points strictly inside r.
func (r Rect) BoundaryDist(p Point) float64 {
	if !r.Contains(p) {
		return r.Dist(p)
	}
	return math.Min(
		math.Min(p.X-r.Min.X, r.Max.X-p.X),
		math.Min(p.Y-r.Min.Y, r.Max.Y-p.Y),
	)
}

// Clip returns p moved to the nearest point inside r.
func (r Rect) Clip(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Corners returns the four corners of r in counterclockwise order starting
// from Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s-%s]", r.Min, r.Max)
}

// BoundingRect returns the MBR of pts. It panics for an empty slice.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of empty point set")
	}
	out := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		out.Min.X = math.Min(out.Min.X, p.X)
		out.Min.Y = math.Min(out.Min.Y, p.Y)
		out.Max.X = math.Max(out.Max.X, p.X)
		out.Max.Y = math.Max(out.Max.Y, p.Y)
	}
	return out
}

// Segment is a closed line segment between A and B.
type Segment struct {
	A, B Point
}

// Dist returns the minimum distance from p to the segment.
func (s Segment) Dist(p Point) float64 {
	ab := s.B.Sub(s.A)
	ap := p.Sub(s.A)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return p.Dist(s.A)
	}
	t := (ap.X*ab.X + ap.Y*ab.Y) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	closest := Point{s.A.X + t*ab.X, s.A.Y + t*ab.Y}
	return p.Dist(closest)
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }
