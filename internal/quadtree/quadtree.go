// Package quadtree implements a point-region (PR) quadtree and linear
// quadtree (Morton/Z-order) codes. The paper's related-work section cites
// the quadtree family (Aboulnaga–Aref, "Window Query Processing in Linear
// Quadtrees") as the classical disk-based access method for window
// queries; the reproduction uses it as an independent baseline to
// cross-check window-query results and as a second space-filling-curve
// ordering for ablation against the Hilbert curve.
package quadtree

import (
	"fmt"
	"math"
	"sort"

	"lbsq/internal/geom"
)

// Item is a point object stored in the tree.
type Item struct {
	ID  int64
	Pos geom.Point
}

// DefaultCapacity is the leaf capacity used when callers pass a
// non-positive value.
const DefaultCapacity = 8

// maxDepth bounds subdivision so coincident points cannot recurse forever.
const maxDepth = 32

// Tree is a PR quadtree over a fixed square region.
type Tree struct {
	root     *qnode
	bounds   geom.Rect
	capacity int
	size     int
}

type qnode struct {
	bounds   geom.Rect
	items    []Item
	children *[4]*qnode // nil for leaves
	depth    int
}

// New returns an empty quadtree covering bounds.
func New(bounds geom.Rect, capacity int) (*Tree, error) {
	if bounds.Empty() {
		return nil, fmt.Errorf("quadtree: empty bounds %v", bounds)
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tree{
		root:     &qnode{bounds: bounds},
		bounds:   bounds,
		capacity: capacity,
	}, nil
}

// Bounds returns the region the tree covers.
func (t *Tree) Bounds() geom.Rect { return t.bounds }

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Insert adds an item. Items outside the tree bounds are rejected.
func (t *Tree) Insert(it Item) error {
	if !t.bounds.Contains(it.Pos) {
		return fmt.Errorf("quadtree: point %v outside bounds %v", it.Pos, t.bounds)
	}
	t.root.insert(it, t.capacity)
	t.size++
	return nil
}

func (n *qnode) insert(it Item, capacity int) {
	if n.children == nil {
		if len(n.items) < capacity || n.depth >= maxDepth {
			n.items = append(n.items, it)
			return
		}
		n.subdivide(capacity)
	}
	n.childFor(it.Pos).insert(it, capacity)
}

func (n *qnode) subdivide(capacity int) {
	c := n.bounds.Center()
	b := n.bounds
	var kids [4]*qnode
	kids[0] = &qnode{bounds: geom.Rect{Min: b.Min, Max: c}, depth: n.depth + 1}            // SW
	kids[1] = &qnode{bounds: geom.NewRect(c.X, b.Min.Y, b.Max.X, c.Y), depth: n.depth + 1} // SE
	kids[2] = &qnode{bounds: geom.NewRect(b.Min.X, c.Y, c.X, b.Max.Y), depth: n.depth + 1} // NW
	kids[3] = &qnode{bounds: geom.Rect{Min: c, Max: b.Max}, depth: n.depth + 1}            // NE
	n.children = &kids
	old := n.items
	n.items = nil
	for _, it := range old {
		n.childFor(it.Pos).insert(it, capacity)
	}
}

// childFor routes a point to a quadrant; ties on the split lines go to the
// higher quadrant so every in-bounds point has exactly one home.
func (n *qnode) childFor(p geom.Point) *qnode {
	c := n.bounds.Center()
	idx := 0
	if p.X >= c.X {
		idx |= 1
	}
	if p.Y >= c.Y {
		idx |= 2
	}
	return n.children[idx]
}

// Window returns every item inside the closed rectangle r.
func (t *Tree) Window(r geom.Rect) []Item {
	var out []Item
	t.root.window(r, &out)
	return out
}

func (n *qnode) window(r geom.Rect, out *[]Item) {
	if !n.bounds.Intersects(r) {
		return
	}
	for _, it := range n.items {
		if r.Contains(it.Pos) {
			*out = append(*out, it)
		}
	}
	if n.children != nil {
		for _, c := range n.children {
			c.window(r, out)
		}
	}
}

// All returns every stored item.
func (t *Tree) All() []Item {
	var out []Item
	t.root.collect(&out)
	return out
}

func (n *qnode) collect(out *[]Item) {
	*out = append(*out, n.items...)
	if n.children != nil {
		for _, c := range n.children {
			c.collect(out)
		}
	}
}

// NN returns the nearest item to q; ok is false for an empty tree.
func (t *Tree) NN(q geom.Point) (Item, bool) {
	if t.size == 0 {
		return Item{}, false
	}
	best := Item{}
	bestD := -1.0
	var walk func(n *qnode)
	walk = func(n *qnode) {
		if bestD >= 0 && n.bounds.Dist(q) > bestD {
			return
		}
		for _, it := range n.items {
			if d := it.Pos.Dist(q); bestD < 0 || d < bestD {
				best, bestD = it, d
			}
		}
		if n.children == nil {
			return
		}
		// Visit nearer quadrants first for tighter pruning.
		order := []*qnode{n.children[0], n.children[1], n.children[2], n.children[3]}
		sort.Slice(order, func(i, j int) bool {
			return order[i].bounds.Dist(q) < order[j].bounds.Dist(q)
		})
		for _, c := range order {
			walk(c)
		}
	}
	walk(t.root)
	return best, true
}

// KNN returns the k nearest items to q in ascending distance order using
// best-first traversal over quadrants.
func (t *Tree) KNN(q geom.Point, k int) []Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	type result struct {
		dist float64
		item Item
	}
	var best []result // sorted ascending, at most k
	worst := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[len(best)-1].dist
	}
	add := func(d float64, it Item) {
		i := sort.Search(len(best), func(i int) bool { return best[i].dist > d })
		best = append(best, result{})
		copy(best[i+1:], best[i:])
		best[i] = result{dist: d, item: it}
		if len(best) > k {
			best = best[:k]
		}
	}
	var walk func(n *qnode)
	walk = func(n *qnode) {
		if n.bounds.Dist(q) > worst() {
			return
		}
		for _, it := range n.items {
			if d := it.Pos.Dist(q); d < worst() {
				add(d, it)
			}
		}
		if n.children == nil {
			return
		}
		order := []*qnode{n.children[0], n.children[1], n.children[2], n.children[3]}
		sort.Slice(order, func(i, j int) bool {
			return order[i].bounds.Dist(q) < order[j].bounds.Dist(q)
		})
		for _, c := range order {
			walk(c)
		}
	}
	walk(t.root)
	out := make([]Item, len(best))
	for i, r := range best {
		out[i] = r.item
	}
	return out
}

// MortonCode returns the Z-order (linear quadtree) code of the grid cell
// containing p on a 2^order × 2^order decomposition of bounds — the code
// a linear quadtree stores in its B+-tree.
func MortonCode(bounds geom.Rect, order int, p geom.Point) int64 {
	side := int64(1) << order
	fx := (p.X - bounds.Min.X) / bounds.Width()
	fy := (p.Y - bounds.Min.Y) / bounds.Height()
	x := clamp64(int64(fx*float64(side)), 0, side-1)
	y := clamp64(int64(fy*float64(side)), 0, side-1)
	return interleave(x) | interleave(y)<<1
}

// MortonDecode returns the grid cell (x, y) encoded by code.
func MortonDecode(code int64) (x, y int64) {
	return deinterleave(code), deinterleave(code >> 1)
}

func interleave(v int64) int64 {
	v &= 0x00000000FFFFFFFF
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

func deinterleave(v int64) int64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return v
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
