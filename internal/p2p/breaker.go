// Per-peer circuit breakers: a reputation record per host that trips open
// after repeated misbehavior (CRC-rejected replies, stale-region
// discards, reply timeouts), quarantines the peer for a cooldown measured
// in collection cycles, and half-opens to probe recovery — the classical
// closed → open → half-open machine of resilient RPC stacks, applied to
// ad-hoc cache sharing so one flaky or byzantine neighbor cannot burn a
// querying host's whole retry budget on every query.
//
// State machine (see DESIGN.md §8):
//
//	closed ──(Threshold consecutive failures)──▶ open
//	open ──(Cooldown cycles elapse)──▶ half-open
//	half-open ──(probe reply delivered)──▶ closed
//	half-open ──(probe fails)──▶ open (re-trip, fresh cooldown)
//
// Liveness: an open breaker always carries a finite reopen cycle
// (cycle + Cooldown at trip time), and every Allow call on or after that
// cycle transitions it to half-open, so no peer is quarantined forever —
// the machine cannot deadlock.
package p2p

import "fmt"

// DefaultBreakerCooldown is the quarantine length (in collection cycles)
// used when a BreakerConfig enables breakers but leaves Cooldown at zero.
const DefaultBreakerCooldown = 8

// BreakerState is one peer's circuit-breaker state.
type BreakerState uint8

const (
	// BreakerClosed: the peer is trusted; requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the peer is quarantined; requests short-circuit.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; the next request is a probe.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig configures the per-peer breakers. The zero value disables
// them entirely (no records kept, no behavioral change).
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that trips a
	// peer's breaker open. Zero disables breakers.
	Threshold int
	// Cooldown is the quarantine length in collection cycles after a
	// trip. Zero selects DefaultBreakerCooldown when Threshold is set.
	Cooldown int64
}

// Enabled reports whether breakers are active.
func (c BreakerConfig) Enabled() bool { return c.Threshold > 0 }

// Normalized returns the config with the cooldown defaulted.
func (c BreakerConfig) Normalized() BreakerConfig {
	out := c
	if out.Threshold < 0 {
		out.Threshold = 0
	}
	if out.Cooldown < 0 {
		out.Cooldown = 0
	}
	if out.Enabled() && out.Cooldown == 0 {
		out.Cooldown = DefaultBreakerCooldown
	}
	return out
}

// Validate reports configuration errors.
func (c BreakerConfig) Validate() error {
	if c.Threshold < 0 {
		return fmt.Errorf("p2p: breaker threshold %d negative", c.Threshold)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("p2p: breaker cooldown %d negative", c.Cooldown)
	}
	return nil
}

// BreakerStats tallies breaker activity for the experiment reports.
type BreakerStats struct {
	// Trips counts closed→open and half-open→open transitions.
	Trips int64
	// ShortCircuits counts requests skipped because the target peer's
	// breaker was open (the saved retry traffic).
	ShortCircuits int64
	// Probes counts half-open probe requests allowed through.
	Probes int64
	// Recoveries counts half-open→closed transitions (probe delivered).
	Recoveries int64
	// InconclusiveProbes counts half-open probes voided by a churn
	// departure: the target left mid-probe, so the probe said nothing
	// about the peer's health and the breaker stays half-open.
	InconclusiveProbes int64
}

// breakerRec is one peer's reputation record. Records are created lazily:
// a peer that never fails never allocates one.
type breakerRec struct {
	state    BreakerState
	failures int   // consecutive failures while closed
	reopenAt int64 // cycle at which an open breaker half-opens
}

// BreakerSet tracks one breaker per peer host. A nil *BreakerSet is valid
// and allows everything (breakers disabled), so the simulator threads it
// through without nil checks. The set is deterministic: its map is never
// iterated on a behavioral path, and all transitions are driven by the
// caller's (deterministic) request/outcome sequence.
type BreakerSet struct {
	cfg   BreakerConfig
	peers map[int]*breakerRec
	cycle int64
	stats BreakerStats
}

// NewBreakerSet creates a breaker set for the (normalized) config, or
// returns nil when the config disables breakers.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	cfg = cfg.Normalized()
	if !cfg.Enabled() {
		return nil
	}
	return &BreakerSet{cfg: cfg, peers: make(map[int]*breakerRec)}
}

// Config returns the active (normalized) config. Safe on nil.
func (bs *BreakerSet) Config() BreakerConfig {
	if bs == nil {
		return BreakerConfig{}
	}
	return bs.cfg
}

// Stats returns the breaker tallies. Safe on nil (zero).
func (bs *BreakerSet) Stats() BreakerStats {
	if bs == nil {
		return BreakerStats{}
	}
	return bs.stats
}

// Cycle returns the current collection cycle. Safe on nil.
func (bs *BreakerSet) Cycle() int64 {
	if bs == nil {
		return 0
	}
	return bs.cycle
}

// Tick advances the collection-cycle clock; the simulator calls it once
// per peer collection (one query's P2P phase = one cycle). Safe on nil.
func (bs *BreakerSet) Tick() {
	if bs == nil {
		return
	}
	bs.cycle++
}

// Allow reports whether a request to peer id should be sent. An open
// breaker whose cooldown has elapsed transitions to half-open and lets
// one probe through; an open breaker inside its cooldown short-circuits
// the request. Safe on nil (always allowed).
func (bs *BreakerSet) Allow(id int) bool {
	if bs == nil {
		return true
	}
	rec, ok := bs.peers[id]
	if !ok {
		return true // no record: closed by construction
	}
	switch rec.state {
	case BreakerOpen:
		if bs.cycle < rec.reopenAt {
			bs.stats.ShortCircuits++
			return false
		}
		rec.state = BreakerHalfOpen
		fallthrough
	case BreakerHalfOpen:
		bs.stats.Probes++
		return true
	default:
		return true
	}
}

// RecordSuccess reports that peer id delivered a sound reply: a closed
// breaker forgets accumulated failures, a half-open breaker closes
// (recovery). An *open* breaker ignores the success: no request was
// allowed through, so the reply is a leftover from an earlier round (a
// peer can trip mid-collection and still have a pre-trip reply in
// flight, or depart and return across a conviction), and honoring it
// would re-enter closed state on stale reputation, bypassing both the
// cooldown and any trust-conviction ForceOpen. Recovery must go through
// the half-open probe. Safe on nil.
func (bs *BreakerSet) RecordSuccess(id int) {
	if bs == nil {
		return
	}
	rec, ok := bs.peers[id]
	if !ok {
		return
	}
	switch rec.state {
	case BreakerHalfOpen:
		bs.stats.Recoveries++
		rec.state = BreakerClosed
		rec.failures = 0
	case BreakerClosed:
		rec.failures = 0
	case BreakerOpen:
		// Late delivery from a pre-trip round: not a probe, no recovery.
	}
}

// RecordFailure reports one misbehavior of peer id (CRC-rejected reply,
// stale-region discard, or reply timeout). Threshold consecutive failures
// trip the breaker open for Cooldown cycles; a failed half-open probe
// re-trips immediately. Safe on nil.
func (bs *BreakerSet) RecordFailure(id int) {
	if bs == nil {
		return
	}
	rec, ok := bs.peers[id]
	if !ok {
		rec = &breakerRec{}
		bs.peers[id] = rec
	}
	switch rec.state {
	case BreakerHalfOpen:
		bs.trip(rec)
	case BreakerClosed:
		rec.failures++
		if rec.failures >= bs.cfg.Threshold {
			bs.trip(rec)
		}
	}
	// BreakerOpen: failures cannot be recorded against a quarantined peer
	// (no request was sent); ignore defensively.
}

// RecordDeparture reports that peer id churned away while a request to
// it was unresolved. Departure is not misbehavior — the peer powered off
// or drifted out of range — but a querying host cannot generally
// distinguish a departed peer from a silent one, so a *closed* breaker
// still counts the strike exactly like RecordFailure (the legacy
// accounting). The one case the host *can* distinguish is a half-open
// probe: the breaker sent exactly one request to a quarantined peer, and
// if that peer departed, the probe was voided rather than failed —
// re-tripping would extend the quarantine on zero evidence and, under
// sustained churn, could starve an honest peer of parole indefinitely.
// The breaker stays half-open and the next Allow sends a fresh probe.
// Safe on nil.
func (bs *BreakerSet) RecordDeparture(id int) {
	if bs == nil {
		return
	}
	rec, ok := bs.peers[id]
	if ok && rec.state == BreakerHalfOpen {
		bs.stats.InconclusiveProbes++
		return
	}
	bs.RecordFailure(id)
}

func (bs *BreakerSet) trip(rec *breakerRec) {
	rec.state = BreakerOpen
	rec.failures = 0
	rec.reopenAt = bs.cycle + bs.cfg.Cooldown
	bs.stats.Trips++
}

// ForceOpen trips peer id's breaker open immediately, regardless of its
// accumulated failure count — the trust layer's conviction hook (a peer
// caught lying by a spot audit or cross-validation conflict is
// quarantined without waiting for Threshold channel failures). Parole
// still runs through the ordinary machine: after Cooldown cycles the
// breaker half-opens and one probe decides. Forcing an already-open
// breaker refreshes its cooldown without recounting the trip. Safe on
// nil (breakers disabled — the trust layer's own quarantine set still
// applies).
func (bs *BreakerSet) ForceOpen(id int) {
	if bs == nil {
		return
	}
	rec, ok := bs.peers[id]
	if !ok {
		rec = &breakerRec{}
		bs.peers[id] = rec
	}
	if rec.state == BreakerOpen {
		rec.reopenAt = bs.cycle + bs.cfg.Cooldown
		return
	}
	bs.trip(rec)
}

// State returns peer id's breaker state (without side effects — an open
// breaker past its cooldown still reports open until Allow probes it).
// Safe on nil (closed).
func (bs *BreakerSet) State(id int) BreakerState {
	if bs == nil {
		return BreakerClosed
	}
	if rec, ok := bs.peers[id]; ok {
		return rec.state
	}
	return BreakerClosed
}

// Tracked returns how many peers have reputation records. Safe on nil.
func (bs *BreakerSet) Tracked() int {
	if bs == nil {
		return 0
	}
	return len(bs.peers)
}

// CheckInvariants verifies the state-machine invariants the chaos soak
// harness asserts after every run (map iteration here is diagnostic only
// and never reaches a behavioral path):
//
//   - every record is in a valid state;
//   - a closed record's consecutive-failure count is below the trip
//     threshold (it would have tripped otherwise);
//   - an open record's reopen cycle is finite and at most one cooldown
//     in the future (no unbounded quarantine — the no-deadlock property);
//   - half-open records carry no stale failure count.
//
// Safe on nil.
func (bs *BreakerSet) CheckInvariants() error {
	if bs == nil {
		return nil
	}
	for id, rec := range bs.peers {
		switch rec.state {
		case BreakerClosed:
			if rec.failures >= bs.cfg.Threshold {
				return fmt.Errorf("p2p: peer %d closed with %d failures (threshold %d)",
					id, rec.failures, bs.cfg.Threshold)
			}
		case BreakerOpen:
			if rec.reopenAt > bs.cycle+bs.cfg.Cooldown {
				return fmt.Errorf("p2p: peer %d open past one cooldown (reopen %d, cycle %d, cooldown %d)",
					id, rec.reopenAt, bs.cycle, bs.cfg.Cooldown)
			}
		case BreakerHalfOpen:
			if rec.failures != 0 {
				return fmt.Errorf("p2p: peer %d half-open with %d stale failures", id, rec.failures)
			}
		default:
			return fmt.Errorf("p2p: peer %d in unknown state %d", id, rec.state)
		}
	}
	return nil
}
