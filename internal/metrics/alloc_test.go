//go:build !race

// Steady-state allocation gates for the metrics observation path,
// following the internal/core/alloc_test.go pattern (excluded under the
// race detector, whose instrumentation skews AllocsPerRun).

package metrics

import "testing"

// TestObservationPathZeroAllocs pins the hot-path contract: counter,
// gauge, histogram, span, and phase-set observation all run without
// touching the allocator once registered. The sim loop observes these
// once per query across tens of thousands of hosts; any regression here
// fails the build.
func TestObservationPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", "slots", SlotBuckets())
	ps := NewPhaseSet(r, "lbsq")
	var spans QuerySpans

	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(12.5)
		g.Add(1)
		h.Observe(137)
		h.ObserveInt(42)
		spans.Reset()
		spans.Add(PhaseP2PCollect, 9)
		spans.Add(PhaseOnAirDownload, 512)
		ps.Observe(&spans)
	})
	if allocs != 0 {
		t.Fatalf("observation path allocates %.1f times per run, want 0", allocs)
	}
}

// TestQuantileZeroAllocs: quantile extraction is read-only arithmetic
// over the fixed buckets — snapshot-free consumers (the experiments
// phase tables) may call it on the live histogram without GC cost.
func TestQuantileZeroAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", "slots", SlotBuckets())
	for i := 0; i < 1000; i++ {
		h.ObserveInt(int64(i * 13 % 5000))
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = h.Quantile(0.5)
		_ = h.Quantile(0.99)
		_ = h.Mean()
		_ = h.Max()
	})
	if allocs != 0 {
		t.Fatalf("quantile path allocates %.1f times per run, want 0", allocs)
	}
}
