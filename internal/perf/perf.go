// Package perf is the repository's performance-regression harness. It
// measures the query hot path with Go's own benchmark machinery
// (testing.Benchmark), times the parallel sweep engine against its
// serial run while asserting bit-identical output, and compares the
// resulting report against a committed baseline so CI can fail on
// regressions.
//
// The harness is a library so both cmd/lbsq-bench and the test suite
// drive the exact same measurements.
package perf

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"lbsq/internal/broadcast"
	"lbsq/internal/core"
	"lbsq/internal/experiments"
	"lbsq/internal/geom"
	"lbsq/internal/p2p"
	"lbsq/internal/sim"
)

// HotpathSchemaVersion versions the BENCH_hotpath.json format.
const HotpathSchemaVersion = 1

// Micro is one micro-benchmark row: the steady-state cost of a hot-path
// operation as measured by testing.Benchmark.
type Micro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Sweep records the parallel-vs-serial engine measurement: the same
// figure sweep run with one worker and with `Workers` workers, the wall
// clock of each, and whether the outputs were bit-identical (they must
// be; `Identical: false` in a report is a bug).
type Sweep struct {
	Cells           int     `json:"cells"`
	Workers         int     `json:"workers"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"identical"`
}

// Hotpath is the full BENCH_hotpath.json document.
type Hotpath struct {
	BenchSchema int     `json:"bench_schema"`
	GoMaxProcs  int     `json:"go_max_procs"`
	NumCPU      int     `json:"num_cpu"`
	GoVersion   string  `json:"go_version"`
	Micro       []Micro `json:"micro"`
	Sweep       Sweep   `json:"sweep"`
}

// workload builds the deterministic hot-path fixtures shared by every
// micro benchmark: a 500-POI field on a 32×32 area, 64 sound peers, and
// a broadcast schedule (mirrors internal/core's benchmark fixtures).
type workload struct {
	db    []broadcast.POI
	peers []core.PeerData
	sched *broadcast.Schedule
	q     geom.Point
}

func newWorkload() workload {
	rng := rand.New(rand.NewSource(2))
	db := make([]broadcast.POI, 500)
	for i := range db {
		db[i] = broadcast.POI{ID: int64(i), Pos: geom.Pt(rng.Float64()*32, rng.Float64()*32)}
	}
	peers := make([]core.PeerData, 0, 64)
	for i := 0; i < 64; i++ {
		cx, cy := 12+rng.Float64()*8, 12+rng.Float64()*8
		vr := geom.NewRect(cx, cy, cx+3+rng.Float64()*4, cy+3+rng.Float64()*4)
		pd := core.PeerData{VR: vr}
		for _, p := range db {
			if vr.Contains(p.Pos) {
				pd.POIs = append(pd.POIs, p)
			}
		}
		peers = append(peers, pd)
	}
	sched, err := broadcast.NewSchedule(db, broadcast.Config{Area: geom.NewRect(0, 0, 32, 32)})
	if err != nil {
		panic(fmt.Sprintf("perf: %v", err))
	}
	return workload{db: db, peers: peers, sched: sched, q: geom.Pt(16, 16)}
}

func row(name string, r testing.BenchmarkResult) Micro {
	ns := float64(0)
	if r.N > 0 {
		ns = float64(r.T.Nanoseconds()) / float64(r.N)
	}
	return Micro{
		Name:        name,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// MicroBenchmarks measures the steady-state hot path: warm-scratch NNV
// and SBNN/SBWQ, the cold (allocate-per-query) NNV for contrast, the
// strip-indexed RectUnion distance/area queries, a p2p buffer-reuse
// neighbor lookup, and one full simulation step of a small world.
func MicroBenchmarks() []Micro {
	wl := newWorkload()
	var out []Micro

	out = append(out, row("nnv_64peers_warm", testing.Benchmark(func(b *testing.B) {
		var s core.Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.NNVScratch(&s, wl.q, wl.peers, 5, 0.5)
		}
	})))

	out = append(out, row("nnv_64peers_cold", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.NNV(wl.q, wl.peers, 5, 0.5)
		}
	})))

	out = append(out, row("sbnn_64peers_warm", testing.Benchmark(func(b *testing.B) {
		var s core.Scratch
		cfg := core.SBNNConfig{K: 5, Lambda: 0.5, AcceptApproximate: true, MinCorrectness: 0.5}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.SBNNScratch(&s, wl.q, wl.peers, cfg, wl.sched, int64(i))
		}
	})))

	out = append(out, row("sbwq_64peers_warm", testing.Benchmark(func(b *testing.B) {
		var s core.Scratch
		w := geom.NewRect(14, 14, 18, 18)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.SBWQScratch(&s, wl.q, w, wl.peers, core.SBWQConfig{}, wl.sched, int64(i))
		}
	})))

	out = append(out, row("rect_union_boundary_dist", testing.Benchmark(func(b *testing.B) {
		var u geom.RectUnion
		for _, p := range wl.peers {
			u.Add(p.VR)
		}
		rng := rand.New(rand.NewSource(7))
		pts := make([]geom.Point, 256)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*32, rng.Float64()*32)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			u.BoundaryDist(pts[i%len(pts)])
		}
	})))

	out = append(out, row("rect_union_circle_area", testing.Benchmark(func(b *testing.B) {
		var u geom.RectUnion
		for _, p := range wl.peers {
			u.Add(p.VR)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			u.IntersectCircleArea(wl.q, 3+float64(i%5))
		}
	})))

	out = append(out, row("p2p_append_neighbors", testing.Benchmark(func(b *testing.B) {
		net, err := p2p.NewNetwork(geom.NewRect(0, 0, 2000, 2000), 200)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		for id := 0; id < 2000; id++ {
			net.Update(id, geom.Pt(rng.Float64()*2000, rng.Float64()*2000))
		}
		var buf []int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = net.AppendNeighbors(buf[:0], geom.Pt(1000, 1000), 200, -1)
		}
	})))

	out = append(out, row("world_step_small", testing.Benchmark(func(b *testing.B) {
		p := sim.LACity().Scaled(1).WithDuration(0.1)
		p.TimeStepSec = 10
		p.Seed = 42
		w, err := sim.NewWorld(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Step(p.TimeStepSec)
		}
	})))

	return out
}

// figuresEqual reports deep equality of two figure slices.
func figuresEqual(a, b []experiments.Figure) bool { return reflect.DeepEqual(a, b) }

// SweepTiming runs the Fig10 sweep at the given scale twice — serial
// and with `workers` workers — and returns the wall-clock comparison.
// The parallel figure must equal the serial one bit-for-bit; Identical
// records the check so the report is self-auditing.
func SweepTiming(o experiments.Options, workers int) Sweep {
	serialOpt := o
	serialOpt.Parallel = 1
	start := time.Now()
	serial := experiments.Fig10(serialOpt)
	serialSec := time.Since(start).Seconds()

	parOpt := o
	parOpt.Parallel = workers
	start = time.Now()
	par := experiments.Fig10(parOpt)
	parSec := time.Since(start).Seconds()

	cells := 0
	for _, s := range serial.Series {
		cells += len(s.Points)
	}
	speedup := 0.0
	if parSec > 0 {
		speedup = serialSec / parSec
	}
	return Sweep{
		Cells:           cells,
		Workers:         workers,
		SerialSeconds:   serialSec,
		ParallelSeconds: parSec,
		Speedup:         speedup,
		Identical:       figuresEqual([]experiments.Figure{serial}, []experiments.Figure{par}),
	}
}

// Measure produces the full hot-path report.
func Measure(o experiments.Options, workers int) Hotpath {
	return Hotpath{
		BenchSchema: HotpathSchemaVersion,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
		Micro:       MicroBenchmarks(),
		Sweep:       SweepTiming(o, workers),
	}
}

// WriteFile writes the report as indented JSON.
func (h Hotpath) WriteFile(path string) error {
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadHotpath reads a previously written report.
func LoadHotpath(path string) (Hotpath, error) {
	var h Hotpath
	data, err := os.ReadFile(path)
	if err != nil {
		return h, err
	}
	if err := json.Unmarshal(data, &h); err != nil {
		return h, fmt.Errorf("perf: %s: %w", path, err)
	}
	return h, nil
}

// Compare checks the current report against a baseline: any micro
// benchmark whose ns/op regressed by more than tolerance (e.g. 0.25 for
// 25%) or whose allocs/op grew at all fails. Rows present only on one
// side are ignored (benchmarks may be added or retired), as is the
// sweep timing (wall clock is machine-dependent; only Identical is
// enforced). Returns the list of human-readable failures.
func Compare(baseline, current Hotpath, tolerance float64) []string {
	base := make(map[string]Micro, len(baseline.Micro))
	for _, m := range baseline.Micro {
		base[m.Name] = m
	}
	var failures []string
	for _, cur := range current.Micro {
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*(1+tolerance) {
			failures = append(failures, fmt.Sprintf(
				"%s: ns/op %.0f -> %.0f (+%.0f%%, tolerance %.0f%%)",
				cur.Name, b.NsPerOp, cur.NsPerOp,
				100*(cur.NsPerOp/b.NsPerOp-1), 100*tolerance))
		}
		if cur.AllocsPerOp > b.AllocsPerOp {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op %d -> %d (steady-state allocations must not grow)",
				cur.Name, b.AllocsPerOp, cur.AllocsPerOp))
		}
	}
	if !current.Sweep.Identical {
		failures = append(failures, "sweep: parallel output differed from serial (determinism contract broken)")
	}
	return failures
}
