package metrics

import (
	"math"
	"testing"
)

func TestExpBucketsShape(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{0, 1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("len %d, want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestExpBucketsPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		start, factor float64
		n             int
	}{{0, 2, 4}, {1, 1, 4}, {1, 2, 0}, {-1, 2, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ExpBuckets(%v, %v, %d) did not panic", tc.start, tc.factor, tc.n)
				}
			}()
			ExpBuckets(tc.start, tc.factor, tc.n)
		}()
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v did not panic", bounds)
				}
			}()
			newHistogram("h", "", "", bounds)
		}()
	}
}

// TestHistogramZeroObservation pins the boundary case the slot scales
// depend on: a cost-free query lands in the dedicated le="0" bucket.
func TestHistogramZeroObservation(t *testing.T) {
	h := newHistogram("h", "", "slots", SlotBuckets())
	h.Observe(0)
	if h.counts[0] != 1 {
		t.Fatalf("zero observation in bucket %v, want counts[0]=1", h.counts)
	}
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("min/max/count/sum = %v/%v/%d/%v", h.Min(), h.Max(), h.Count(), h.Sum())
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("p99 of all-zero histogram = %v, want 0", q)
	}
}

// TestHistogramMaxSlotBoundary pins the exact-bound edge: a value equal
// to the largest finite bound stays out of the overflow bucket, one ulp
// above it lands in overflow.
func TestHistogramMaxSlotBoundary(t *testing.T) {
	bounds := SlotBuckets()
	maxBound := bounds[len(bounds)-1]
	h := newHistogram("h", "", "slots", bounds)
	h.Observe(maxBound)
	if h.counts[len(bounds)-1] != 1 || h.counts[len(bounds)] != 0 {
		t.Fatalf("max-bound observation misplaced: %v", h.counts)
	}
	h.Observe(math.Nextafter(maxBound, math.Inf(1)))
	if h.counts[len(bounds)] != 1 {
		t.Fatalf("above-max observation not in overflow: %v", h.counts)
	}
}

// TestHistogramOverflowQuantiles pins the overflow-bucket contract:
// quantiles that land in +Inf report the exact observed max, not
// infinity.
func TestHistogramOverflowQuantiles(t *testing.T) {
	h := newHistogram("h", "", "slots", []float64{0, 1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(1e9) // all in overflow
	}
	if h.counts[3] != 10 {
		t.Fatalf("overflow count %v", h.counts)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 1e9 {
			t.Fatalf("Quantile(%v) = %v, want exact max 1e9", q, got)
		}
	}
	if math.IsInf(h.Quantile(1), 1) {
		t.Fatal("quantile returned +Inf")
	}
}

func TestHistogramQuantilesExactRanks(t *testing.T) {
	// 100 observations 1..100 on unit-wide buckets: the quantile is the
	// upper bound of the bucket holding the ceil(q·n)-th value, i.e. the
	// value itself.
	bounds := make([]float64, 101)
	for i := range bounds {
		bounds[i] = float64(i)
	}
	h := newHistogram("h", "", "slots", bounds)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := map[float64]float64{0.5: 50, 0.9: 90, 0.99: 99, 1: 100, 0: 1}
	for q, want := range cases {
		if got := h.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// q > 1 clamps to the max.
	if got := h.Quantile(1.5); got != 100 {
		t.Fatalf("Quantile(1.5) = %v, want 100", got)
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("Mean = %v, want 50.5", got)
	}
}

// TestHistogramQuantileClampedToMax: the reported quantile never
// exceeds a value that actually occurred, even when the bucket's upper
// bound does.
func TestHistogramQuantileClampedToMax(t *testing.T) {
	h := newHistogram("h", "", "slots", SlotBuckets())
	h.Observe(1000) // bucket (512, 1024]
	if got := h.Quantile(0.5); got != 1000 {
		t.Fatalf("Quantile(0.5) = %v, want clamped max 1000", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram("h", "", "slots", SlotBuckets())
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram reports nonzero summary")
	}
}

func TestHistogramMinMaxTracking(t *testing.T) {
	h := newHistogram("h", "", "slots", SlotBuckets())
	for _, v := range []float64{5, 2, 9, 2, 7} {
		h.Observe(v)
	}
	if h.Min() != 2 || h.Max() != 9 || h.Count() != 5 || h.Sum() != 25 {
		t.Fatalf("min/max/count/sum = %v/%v/%d/%v", h.Min(), h.Max(), h.Count(), h.Sum())
	}
}

func TestCanonicalScales(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"slot": SlotBuckets(), "work": WorkBuckets(), "area": AreaBuckets(),
	} {
		if bounds[0] != 0 {
			t.Fatalf("%s scale does not start with the 0 bucket: %v", name, bounds[0])
		}
		for i := 1; i < len(bounds); i++ {
			if !(bounds[i] > bounds[i-1]) {
				t.Fatalf("%s scale not ascending at %d", name, i)
			}
		}
	}
	if top := SlotBuckets()[len(SlotBuckets())-1]; top < 2e6 {
		t.Fatalf("slot scale tops out at %v, want >= 2M slots", top)
	}
	if top := AreaBuckets()[len(AreaBuckets())-1]; top < 400 {
		t.Fatalf("area scale tops out at %v mi², want >= the 400 mi² service area", top)
	}
}
