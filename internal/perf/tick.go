package perf

// Batched tick-engine benchmarks (DESIGN.md §14): World.Step wall clock
// at several Params.TickWorkers settings, each row stamped with the
// GOMAXPROCS it ran under so speedups are honest on any machine — a
// single-core runner records ~1.0×, not a fabricated parallel win — plus
// an embedded serial-identity check mirroring the sim package's
// byte-identity tests.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"lbsq/internal/sim"
)

// TickSchemaVersion versions the BENCH_tick.json format.
const TickSchemaVersion = 1

// TickWorkerCounts are the Params.TickWorkers settings each report
// measures; index 0 must stay 1 (the serial baseline the speedups are
// relative to).
var TickWorkerCounts = []int{1, 2, 4}

// TickRow is one World.Step measurement under the batched engine.
type TickRow struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	// GoMaxProcs is recorded per row, not just per document, so a file
	// assembled across machines (or a CPU-restricted run) stays honest
	// about what parallelism was actually available.
	GoMaxProcs  int     `json:"go_max_procs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SpeedupVsSerial is this row's ns/op relative to the workers=1 row.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// MemoHits / DeltaReuses are the engine's MVR-sharing counters over
	// the benchmark run — nonzero proves the memoization layer fired.
	MemoHits    int64 `json:"memo_hits"`
	DeltaReuses int64 `json:"delta_reuses"`
}

// Tick is the full BENCH_tick.json document.
type Tick struct {
	BenchSchema int    `json:"bench_schema"`
	GoMaxProcs  int    `json:"go_max_procs"`
	NumCPU      int    `json:"num_cpu"`
	GoVersion   string `json:"go_version"`
	// Identical records the embedded serial-identity check: a batched
	// run's Stats must equal the serial run's (memo counters masked).
	// False in a report is a bug, and CompareTick fails on it.
	Identical bool      `json:"identical"`
	Rows      []TickRow `json:"rows"`
}

// tickParams is the world the tick benchmarks run: the hotpath
// harness's world_step_small configuration, stretched to half a
// simulated hour so caches fill and batches carry real work, with the
// worker knob applied. One benchmark op is one full world run —
// World.Step cost grows with simulated time as caches fill, so an
// auto-ramped open-ended step loop would measure whatever horizon the
// ramp happened to reach; a bounded, identical workload per op keeps
// rows comparable across runs and machines.
func tickParams(workers int) sim.Params {
	p := sim.LACity().Scaled(1).WithDuration(0.5)
	p.TimeStepSec = 10
	p.Seed = 42
	p.TickWorkers = workers
	return p
}

// TickIdentical runs the benchmark world serially and batched and
// reports whether the Stats match (the engine-internal memo counters,
// excluded from every encoding, are masked). The full byte-identity
// matrix lives in internal/sim's tests; this is the self-auditing check
// embedded in the perf report.
func TickIdentical(workers int) (bool, error) {
	run := func(workers int) (sim.Stats, error) {
		w, err := sim.NewWorld(tickParams(workers))
		if err != nil {
			return sim.Stats{}, err
		}
		return w.Run(), nil
	}
	serial, err := run(1)
	if err != nil {
		return false, err
	}
	batched, err := run(workers)
	if err != nil {
		return false, err
	}
	serial.MVRMemoHits, serial.MVRDeltaReuses = 0, 0
	batched.MVRMemoHits, batched.MVRDeltaReuses = 0, 0
	return serial == batched, nil
}

// MeasureTick produces the full tick-engine report.
func MeasureTick() (Tick, error) {
	rep := Tick{
		BenchSchema: TickSchemaVersion,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
	}
	maxWorkers := TickWorkerCounts[len(TickWorkerCounts)-1]
	ok, err := TickIdentical(maxWorkers)
	if err != nil {
		return rep, err
	}
	rep.Identical = ok

	var serialNs float64
	for _, workers := range TickWorkerCounts {
		workers := workers
		var memoHits, deltaReuses int64
		r := testing.Benchmark(func(b *testing.B) {
			p := tickParams(workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w, err := sim.NewWorld(p)
				if err != nil {
					b.Fatal(err)
				}
				s := w.Run()
				memoHits, deltaReuses = s.MVRMemoHits, s.MVRDeltaReuses
			}
		})
		row := TickRow{
			Name:        fmt.Sprintf("world_run_w%d", workers),
			Workers:     workers,
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			MemoHits:    memoHits,
			DeltaReuses: deltaReuses,
		}
		if r.N > 0 {
			row.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
		}
		if workers == 1 {
			serialNs = row.NsPerOp
		}
		if serialNs > 0 && row.NsPerOp > 0 {
			row.SpeedupVsSerial = serialNs / row.NsPerOp
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// WriteFile writes the report as indented JSON (same contract as
// Hotpath.WriteFile).
func (t Tick) WriteFile(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadTick reads a previously written tick report.
func LoadTick(path string) (Tick, error) {
	var t Tick
	data, err := os.ReadFile(path)
	if err != nil {
		return t, err
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return t, fmt.Errorf("perf: %s: %w", path, err)
	}
	return t, nil
}

// CompareTick checks a current tick report against a baseline. Wall
// clock is compared only between rows measured under the same
// GOMAXPROCS (a 1-core baseline says nothing about a 4-core run);
// steady-state allocs/op must never grow regardless, and the embedded
// identity check must hold. Returns human-readable failures.
func CompareTick(baseline, current Tick, tolerance float64) []string {
	base := make(map[string]TickRow, len(baseline.Rows))
	for _, r := range baseline.Rows {
		base[r.Name] = r
	}
	var failures []string
	for _, cur := range current.Rows {
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		if b.GoMaxProcs == cur.GoMaxProcs && b.NsPerOp > 0 &&
			cur.NsPerOp > b.NsPerOp*(1+tolerance) {
			failures = append(failures, fmt.Sprintf(
				"%s: ns/op %.0f -> %.0f (+%.0f%%, tolerance %.0f%%)",
				cur.Name, b.NsPerOp, cur.NsPerOp,
				100*(cur.NsPerOp/b.NsPerOp-1), 100*tolerance))
		}
		if cur.AllocsPerOp > b.AllocsPerOp {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op %d -> %d (steady-state allocations must not grow)",
				cur.Name, b.AllocsPerOp, cur.AllocsPerOp))
		}
	}
	if !current.Identical {
		failures = append(failures,
			"tick: batched engine output differed from serial (identity contract broken)")
	}
	return failures
}
