package sim

// Batched-engine acceptance tests: Params.TickWorkers > 1 must be
// byte-identical to the seed's serial query loop — report rows (wall
// clock zeroed), trace streams, metrics snapshots, fault counters, and
// breaker state — across the full armed-knob soak schedule, at every
// worker count, and the MVR memoization layer must actually fire on a
// default-ish workload. Every schedule runs twice: as drawn (broadcast
// loss armed, exercising the serial-air fallback) and with broadcast
// loss zeroed (exercising the parallel execute phase proper), so both
// regimes of the engine are pinned against the same serial baseline.
// `go test -race` runs these too, which is the data-race check on the
// execute phase.

import (
	"bytes"
	"encoding/json"
	"strconv"
	"testing"

	"lbsq/internal/trace"
)

// batchedWorkerCounts are the parallel configurations pinned against the
// workers=1 serial baseline.
var batchedWorkerCounts = []int{2, 4, 8}

// runTickWorld runs p at the given worker count with every serial
// side-effect surface armed — trace capture, the metrics registry,
// baseline sampling, ground-truth self-checks — and returns the world,
// its stats, the marshaled report row (wall clock zeroed), and the raw
// trace stream.
func runTickWorld(t *testing.T, p Params, workers int) (*World, Stats, []byte, []byte) {
	t.Helper()
	p.TickWorkers = workers
	p.Metrics = true
	w, err := NewWorld(p)
	if err != nil {
		t.Fatalf("world (workers=%d): %v", workers, err)
	}
	w.SelfCheck = true
	w.CompareBaseline = true
	w.BaselineSampleRate = 0.5 // exercise both branches of the coin
	var trBuf bytes.Buffer
	w.Trace = trace.NewWriter(&trBuf)
	s := w.Run()
	w.Trace.Flush()
	if err := w.SelfCheckErr(); err != nil {
		t.Fatalf("self-check (workers=%d): %v", workers, err)
	}
	rep := NewReport(p, s, true, 0)
	snap := w.Metrics().Snapshot()
	rep.Metrics = &snap
	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return w, s, js, trBuf.Bytes()
}

// checkTickIdentity pins every batched worker count against the serial
// baseline for one parameter set.
func checkTickIdentity(t *testing.T, p Params) {
	t.Helper()
	base, bs, bRep, bTr := runTickWorld(t, p, 1)
	if bs.MVRMemoHits != 0 || bs.MVRDeltaReuses != 0 {
		t.Errorf("serial path ran the memo engine: hits=%d deltas=%d",
			bs.MVRMemoHits, bs.MVRDeltaReuses)
	}
	for _, workers := range batchedWorkerCounts {
		w, s, rep, tr := runTickWorld(t, p, workers)
		if !bytes.Equal(bRep, rep) {
			t.Errorf("workers=%d report diverged from serial:\n%s\nvs\n%s",
				workers, rep, bRep)
		}
		if !bytes.Equal(bTr, tr) {
			t.Errorf("workers=%d trace diverged from serial (%d vs %d bytes)",
				workers, len(tr), len(bTr))
		}
		// Direct Stats comparison catches the unexported fields the report
		// row does not carry; the engine-internal memo counters (excluded
		// from every encoding) are masked first.
		ms, mb := s, bs
		ms.MVRMemoHits, ms.MVRDeltaReuses = 0, 0
		mb.MVRMemoHits, mb.MVRDeltaReuses = 0, 0
		if ms != mb {
			t.Errorf("workers=%d stats diverged from serial:\n%+v\nvs\n%+v",
				workers, ms, mb)
		}
		if w.FaultCounters() != base.FaultCounters() {
			t.Errorf("workers=%d fault counters diverged: %+v vs %+v",
				workers, w.FaultCounters(), base.FaultCounters())
		}
		if (w.Breakers() == nil) != (base.Breakers() == nil) {
			t.Errorf("workers=%d breaker allocation diverged", workers)
		} else if w.Breakers() != nil {
			if w.Breakers().Stats() != base.Breakers().Stats() ||
				w.Breakers().Tracked() != base.Breakers().Tracked() ||
				w.Breakers().Cycle() != base.Breakers().Cycle() {
				t.Errorf("workers=%d breaker state diverged", workers)
			}
		}
	}
}

// TestBatchedTickIdentity sweeps the chaos-soak schedules — faults,
// churn, resilience, byzantine attack with audits, POI updates with IR
// reconciliation, burst fading, blackouts, the degraded-mode planner,
// both query kinds — through the batched engine at every worker count.
func TestBatchedTickIdentity(t *testing.T) {
	schedules := 8
	if testing.Short() {
		schedules = 3
	}
	for schedule := 0; schedule < schedules; schedule++ {
		schedule := schedule
		t.Run("schedule"+strconv.Itoa(schedule), func(t *testing.T) {
			p := soakParams(schedule)
			t.Run("serialAir", func(t *testing.T) { checkTickIdentity(t, p) })
			t.Run("parallel", func(t *testing.T) {
				pc := p
				pc.Faults.BroadcastLoss = 0 // loss-free channel: parallel execute runs
				checkTickIdentity(t, pc)
			})
		})
	}
}

// TestBatchedTickIdentityClean pins the impairment-free configurations
// (no fault profile at all), where the whole batch executes in parallel
// and the memoized empty-cache groups are common.
func TestBatchedTickIdentityClean(t *testing.T) {
	for _, kind := range []QueryKind{KNNQuery, WindowQuery} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			p := LACity().Scaled(1.5).WithDuration(0.1)
			p.Seed = 99
			p.TimeStepSec = 10
			p.Kind = kind
			p.AcceptApproximate = kind == KNNQuery
			checkTickIdentity(t, p)
		})
	}
}

// TestBatchedMemoHits proves the memoization layer fires on a
// default-ish workload: same-tick queries with matching untainted VR
// multisets share one merged region.
func TestBatchedMemoHits(t *testing.T) {
	p := LACity().Scaled(1.5).WithDuration(0.1)
	p.Seed = 1234
	p.TimeStepSec = 10
	p.Kind = KNNQuery
	p.TickWorkers = 4
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	s := w.Run()
	if s.MVRMemoHits == 0 {
		t.Error("no same-tick query ever shared a memoized MVR")
	}
	t.Logf("memo hits=%d delta reuses=%d over %d queries",
		s.MVRMemoHits, s.MVRDeltaReuses, s.Queries)
}

// TestTickWorkersValidate pins the knob's validation contract.
func TestTickWorkersValidate(t *testing.T) {
	p := LACity()
	p.TickWorkers = -1
	if err := p.Validate(); err == nil {
		t.Error("negative TickWorkers validated")
	}
}
