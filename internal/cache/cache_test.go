package cache

import (
	"math/rand"
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

func mkRegion(rect geom.Rect, ids ...int64) Region {
	r := Region{Rect: rect}
	// Place POIs spread inside the rect.
	for i, id := range ids {
		f := float64(i+1) / float64(len(ids)+1)
		r.POIs = append(r.POIs, broadcast.POI{
			ID:  id,
			Pos: geom.Pt(rect.Min.X+f*rect.Width(), rect.Min.Y+f*rect.Height()),
		})
	}
	return r
}

func TestInsertAndSize(t *testing.T) {
	c := New(10, DirectionDistance)
	if c.Capacity() != 10 || c.Size() != 0 {
		t.Fatalf("fresh cache cap=%d size=%d", c.Capacity(), c.Size())
	}
	c.Insert(mkRegion(geom.NewRect(0, 0, 2, 2), 1, 2, 3), geom.Pt(1, 1), geom.Point{}, 0)
	if c.Size() != 3 || len(c.Regions()) != 1 {
		t.Fatalf("size=%d regions=%d", c.Size(), len(c.Regions()))
	}
}

func TestZeroCapacityCacheStaysEmpty(t *testing.T) {
	c := New(0, DirectionDistance)
	c.Insert(mkRegion(geom.NewRect(0, 0, 1, 1), 1), geom.Pt(0, 0), geom.Point{}, 0)
	if c.Size() != 0 {
		t.Fatal("zero-capacity cache accepted POIs")
	}
	neg := New(-5, LRU)
	if neg.Capacity() != 0 {
		t.Fatalf("negative capacity = %d", neg.Capacity())
	}
}

func TestEmptyRegionIgnored(t *testing.T) {
	c := New(10, DirectionDistance)
	c.Insert(Region{Rect: geom.Rect{}}, geom.Pt(0, 0), geom.Point{}, 0)
	if len(c.Regions()) != 0 {
		t.Fatal("degenerate region stored")
	}
}

func TestEvictionKeepsNewest(t *testing.T) {
	c := New(4, DirectionDistance)
	pos := geom.Pt(0, 0)
	c.Insert(mkRegion(geom.NewRect(10, 10, 12, 12), 1, 2), pos, geom.Point{}, 1)
	c.Insert(mkRegion(geom.NewRect(20, 20, 22, 22), 3, 4), pos, geom.Point{}, 2)
	// Third region overflows: the farthest old region (20,20) is evicted.
	c.Insert(mkRegion(geom.NewRect(1, 1, 3, 3), 5, 6), pos, geom.Point{}, 3)
	if c.Size() != 4 {
		t.Fatalf("size = %d", c.Size())
	}
	for _, r := range c.Regions() {
		for _, p := range r.POIs {
			if p.ID == 3 || p.ID == 4 {
				t.Fatal("farthest region not evicted")
			}
			if p.ID == 5 || p.ID == 6 {
				return // newest present: good
			}
		}
	}
	t.Fatal("newest region missing")
}

func TestDirectionPenalty(t *testing.T) {
	c := New(4, DirectionDistance)
	pos := geom.Pt(0, 0)
	heading := geom.Pt(1, 0) // moving east
	// Region ahead (east) at distance 15, region behind (west) at 10.
	ahead := mkRegion(geom.NewRect(14, -1, 16, 1), 1, 2)
	behind := mkRegion(geom.NewRect(-11, -1, -9, 1), 3, 4)
	c.Insert(ahead, pos, heading, 1)
	c.Insert(behind, pos, heading, 2)
	// Overflow: the behind region has effective distance 10*3 > 15, so it
	// is evicted even though it is nearer.
	c.Insert(mkRegion(geom.NewRect(1, 1, 2, 2), 5, 6), pos, heading, 3)
	for _, r := range c.Regions() {
		for _, p := range r.POIs {
			if p.ID == 3 || p.ID == 4 {
				t.Fatal("behind region survived despite direction penalty")
			}
		}
	}
}

func TestLRUPolicy(t *testing.T) {
	c := New(4, LRU)
	pos := geom.Pt(0, 0)
	c.Insert(mkRegion(geom.NewRect(1, 1, 2, 2), 1, 2), pos, geom.Point{}, 1)
	c.Insert(mkRegion(geom.NewRect(3, 3, 4, 4), 3, 4), pos, geom.Point{}, 2)
	// Touch the first region so the second becomes LRU.
	c.Touch(0, 5)
	c.Insert(mkRegion(geom.NewRect(5, 5, 6, 6), 5, 6), pos, geom.Point{}, 6)
	for _, r := range c.Regions() {
		for _, p := range r.POIs {
			if p.ID == 3 || p.ID == 4 {
				t.Fatal("LRU region (stamp 2) survived")
			}
		}
	}
	if c.Size() != 4 {
		t.Fatalf("size = %d", c.Size())
	}
}

func TestShrinkOversizedRegionSoundness(t *testing.T) {
	// 10 POIs into capacity 4: the kept region must contain exactly the
	// kept POIs — no dropped POI may lie inside the shrunken rect.
	rect := geom.NewRect(0, 0, 10, 10)
	var pois []broadcast.POI
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		pois = append(pois, broadcast.POI{
			ID:  int64(i),
			Pos: geom.Pt(rng.Float64()*10, rng.Float64()*10),
		})
	}
	c := New(4, DirectionDistance)
	c.Insert(Region{Rect: rect, POIs: pois}, geom.Pt(5, 5), geom.Point{}, 0)
	if c.Size() > 4 {
		t.Fatalf("size = %d exceeds capacity", c.Size())
	}
	if len(c.Regions()) == 0 {
		t.Skip("region shrank to nothing for this layout")
	}
	kept := map[int64]bool{}
	r := c.Regions()[0]
	for _, p := range r.POIs {
		kept[p.ID] = true
		if !r.Rect.Contains(p.Pos) {
			t.Fatalf("kept POI %d outside shrunken rect", p.ID)
		}
	}
	for _, p := range pois {
		if !kept[p.ID] && r.Rect.Contains(p.Pos) {
			t.Fatalf("dropped POI %d still inside shrunken rect %v — VR now lies",
				p.ID, r.Rect)
		}
	}
}

// Property: under random workloads the soundness invariant holds — every
// stored region's POI list is exactly the inserted POIs that fall inside
// its rect, and size never exceeds capacity.
func TestRandomWorkloadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, policy := range []Policy{DirectionDistance, LRU} {
		c := New(12, policy)
		nextID := int64(0)
		for step := 0; step < 500; step++ {
			cx, cy := rng.Float64()*50, rng.Float64()*50
			rect := geom.NewRect(cx, cy, cx+1+rng.Float64()*5, cy+1+rng.Float64()*5)
			n := 1 + rng.Intn(6)
			r := Region{Rect: rect}
			for i := 0; i < n; i++ {
				r.POIs = append(r.POIs, broadcast.POI{
					ID: nextID,
					Pos: geom.Pt(
						rect.Min.X+rng.Float64()*rect.Width(),
						rect.Min.Y+rng.Float64()*rect.Height(),
					),
				})
				nextID++
			}
			pos := geom.Pt(rng.Float64()*50, rng.Float64()*50)
			heading := geom.Pt(rng.Float64()*2-1, rng.Float64()*2-1)
			c.Insert(r, pos, heading, int64(step))

			if c.Size() > c.Capacity() {
				t.Fatalf("policy %v step %d: size %d > capacity", policy, step, c.Size())
			}
			total := 0
			for _, reg := range c.Regions() {
				if len(reg.POIs) == 0 {
					total++ // empty regions charge one unit
				}
				total += len(reg.POIs)
				for _, p := range reg.POIs {
					if !reg.Rect.Contains(p.Pos) {
						t.Fatalf("policy %v step %d: POI outside its region", policy, step)
					}
				}
			}
			if total != c.Size() {
				t.Fatalf("policy %v step %d: size %d != sum %d", policy, step, c.Size(), total)
			}
			if c.POICount() > c.Size() {
				t.Fatalf("policy %v step %d: POICount %d exceeds Size %d",
					policy, step, c.POICount(), c.Size())
			}
		}
		c.Clear()
		if c.Size() != 0 || len(c.Regions()) != 0 {
			t.Fatalf("Clear left state behind")
		}
	}
}

func TestPolicyString(t *testing.T) {
	if DirectionDistance.String() != "direction-distance" ||
		LRU.String() != "lru" || Policy(99).String() != "unknown" {
		t.Error("Policy.String labels wrong")
	}
}

func TestTouchOutOfRange(t *testing.T) {
	c := New(4, LRU)
	c.Touch(5, 1)  // must not panic
	c.Touch(-1, 1) // must not panic
}

func TestEvictUntilFitDegenerateSingleRegion(t *testing.T) {
	// A single stored region can only overflow if shrinking already
	// happened; exercise the degenerate branch directly by inserting a
	// region exactly at capacity, then one oversized region alone.
	c := New(3, DirectionDistance)
	big := mkRegion(geom.NewRect(0, 0, 10, 10), 1, 2, 3, 4, 5, 6, 7)
	c.Insert(big, geom.Pt(5, 5), geom.Point{}, 0)
	if c.Size() > 3 {
		t.Fatalf("size %d exceeds capacity after oversized insert", c.Size())
	}
}

func TestEffectiveDistanceZeroVector(t *testing.T) {
	// Target exactly at the host: zero distance regardless of heading.
	if got := effectiveDistance(geom.Pt(1, 1), geom.Pt(1, 0), geom.Pt(1, 1)); got != 0 {
		t.Errorf("coincident target distance = %v", got)
	}
	// No heading: plain distance.
	if got := effectiveDistance(geom.Pt(0, 0), geom.Point{}, geom.Pt(3, 4)); got != 5 {
		t.Errorf("no-heading distance = %v", got)
	}
	// Ahead: plain distance; behind: penalized.
	ahead := effectiveDistance(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(5, 0))
	behind := effectiveDistance(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(-5, 0))
	if ahead != 5 || behind != 15 {
		t.Errorf("ahead=%v behind=%v", ahead, behind)
	}
}

func TestShrinkRegionTieAtCut(t *testing.T) {
	// Two POIs equidistant from the center with capacity for one: the
	// shrink must not keep a rect containing the dropped twin.
	rect := geom.NewRect(0, 0, 10, 10)
	r := Region{Rect: rect, POIs: []broadcast.POI{
		{ID: 1, Pos: geom.Pt(3, 5)}, // distance 2 from center (5,5)
		{ID: 2, Pos: geom.Pt(7, 5)}, // distance 2 as well
		{ID: 3, Pos: geom.Pt(5, 6)}, // distance 1
	}}
	out := shrinkRegion(r, 2)
	for _, p := range out.POIs {
		if !out.Rect.Contains(p.Pos) {
			t.Fatal("kept POI outside shrunken rect")
		}
	}
	kept := map[int64]bool{}
	for _, p := range out.POIs {
		kept[p.ID] = true
	}
	for _, p := range r.POIs {
		if !kept[p.ID] && out.Rect.Contains(p.Pos) {
			t.Fatalf("dropped POI %d inside shrunken rect %v", p.ID, out.Rect)
		}
	}
}

func TestShrinkRegionZeroBudget(t *testing.T) {
	r := mkRegion(geom.NewRect(0, 0, 2, 2), 1, 2)
	if out := shrinkRegion(r, 0); !out.Rect.Empty() && len(out.POIs) != 0 {
		t.Fatalf("zero budget kept %v", out)
	}
}
