package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"lbsq/internal/broadcast"
)

func TestOrderingAblation(t *testing.T) {
	rows := OrderingAblation(tiny())
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byOrd := map[broadcast.Ordering]OrderingRow{}
	for _, r := range rows {
		byOrd[r.Ordering] = r
		if r.MeanKNNPackets <= 0 || r.MeanWindowPackets <= 0 || r.MeanKNNLatency <= 0 {
			t.Fatalf("%v: degenerate means %+v", r.Ordering, r)
		}
	}
	// Hilbert's locality means fewer window packets than row-major.
	if byOrd[broadcast.OrderingHilbert].MeanWindowPackets >
		byOrd[broadcast.OrderingRowMajor].MeanWindowPackets {
		t.Errorf("Hilbert window packets %.2f above row-major %.2f",
			byOrd[broadcast.OrderingHilbert].MeanWindowPackets,
			byOrd[broadcast.OrderingRowMajor].MeanWindowPackets)
	}
	var buf bytes.Buffer
	WriteOrdering(&buf, rows)
	if !strings.Contains(buf.String(), "hilbert") {
		t.Error("table missing hilbert row")
	}
}

func TestCorrectnessCalibrationPoisson(t *testing.T) {
	bins := CorrectnessCalibration(tiny(), false, 1500)
	if len(bins) != 5 {
		t.Fatalf("%d bins", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
		if b.Count == 0 {
			continue
		}
		if b.MeanPredicted < b.Lo-1e-9 || b.MeanPredicted > b.Hi+1e-9 {
			t.Fatalf("bin [%v,%v): mean predicted %v outside bin", b.Lo, b.Hi, b.MeanPredicted)
		}
		if b.Observed < 0 || b.Observed > 1 {
			t.Fatalf("observed %v out of range", b.Observed)
		}
	}
	if total < 500 {
		t.Fatalf("only %d unverified candidates collected", total)
	}
	// Calibration: in well-populated buckets the observed frequency must
	// be within a generous tolerance of the prediction (the lemma treats
	// a necessary condition as sufficient, so some bias is expected, but
	// it should not be wildly off under its own Poisson assumption).
	for _, b := range bins {
		if b.Count < 100 {
			continue
		}
		if math.Abs(b.Observed-b.MeanPredicted) > 0.30 {
			t.Errorf("bin [%v,%v): predicted %.3f observed %.3f (n=%d)",
				b.Lo, b.Hi, b.MeanPredicted, b.Observed, b.Count)
		}
	}
	var buf bytes.Buffer
	WriteCalibration(&buf, "Poisson", bins)
	if !strings.Contains(buf.String(), "predicted bin") {
		t.Error("calibration table missing header")
	}
}

func TestCorrectnessCalibrationClusteredRuns(t *testing.T) {
	bins := CorrectnessCalibration(tiny(), true, 800)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total == 0 {
		t.Fatal("clustered calibration collected nothing")
	}
}

func TestMultiHopAblation(t *testing.T) {
	rows := MultiHopAblation(tiny())
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	// Within each set, more hops never reach fewer peers.
	bySet := map[string][]HopRow{}
	for _, r := range rows {
		bySet[r.SetName] = append(bySet[r.SetName], r)
		if r.SharedPct < 0 || r.SharedPct > 100 {
			t.Fatalf("shared %v out of range", r.SharedPct)
		}
	}
	for set, rs := range bySet {
		for i := 1; i < len(rs); i++ {
			if rs[i].AvgPeers < rs[i-1].AvgPeers-0.01 {
				t.Errorf("%s: peers fell from %.2f to %.2f as hops rose",
					set, rs[i-1].AvgPeers, rs[i].AvgPeers)
			}
		}
	}
	var buf bytes.Buffer
	WriteMultiHop(&buf, rows)
	if !strings.Contains(buf.String(), "multi-hop") {
		t.Error("table missing header")
	}
}

func TestResultLifetime(t *testing.T) {
	rows := ResultLifetime(tiny())
	if len(rows) != 9 { // 3 sets x 3 ks
		t.Fatalf("%d rows", len(rows))
	}
	bySet := map[string][]LifetimeRow{}
	for _, r := range rows {
		bySet[r.SetName] = append(bySet[r.SetName], r)
		if r.MeanMiles <= 0 {
			t.Fatalf("%s k=%d: lifetime %v not positive", r.SetName, r.K, r.MeanMiles)
		}
		if r.MeanSeconds <= 0 {
			t.Fatalf("seconds %v not positive", r.MeanSeconds)
		}
	}
	// The knowledge region of a larger k is bigger, so the lifetime must
	// not shrink with k (weak monotonicity, generous tolerance).
	for set, rs := range bySet {
		if rs[len(rs)-1].MeanMiles < rs[0].MeanMiles*0.5 {
			t.Errorf("%s: lifetime collapsed with k: %v -> %v",
				set, rs[0].MeanMiles, rs[len(rs)-1].MeanMiles)
		}
	}
	var buf bytes.Buffer
	WriteLifetime(&buf, rows)
	if !strings.Contains(buf.String(), "Result lifetime") {
		t.Error("table missing header")
	}
}

func TestFigureChart(t *testing.T) {
	f := Fig15(tiny())
	c := f.Chart()
	if len(c.Series) != 3 {
		t.Fatalf("%d chart series", len(c.Series))
	}
	if !c.FixedY || c.YMax != 100 {
		t.Error("chart must use the fixed 0..100 percent axis")
	}
	for si, s := range c.Series {
		if len(s.X) != len(WindowSweep()) {
			t.Fatalf("series %d has %d points", si, len(s.X))
		}
		for i := range s.X {
			want := f.Series[si].Points[i].VerifiedPct + f.Series[si].Points[i].ApproximatePct
			if s.Y[i] != want {
				t.Fatalf("series %d point %d: %v want %v", si, i, s.Y[i], want)
			}
		}
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig15") {
		t.Error("SVG missing figure id")
	}
}
