package sim

import (
	"fmt"
	"math/rand"

	"lbsq/internal/broadcast"
	"lbsq/internal/cache"
	"lbsq/internal/core"
	"lbsq/internal/geom"
	"lbsq/internal/mobility"
	"lbsq/internal/rtree"
	"lbsq/internal/wire"
)

// updateSeedSalt seeds the POI-mutation stream and irSeedSalt the
// IR-listen loss stream. Both are decorrelated from the world, fault,
// byzantine, and trust streams for the same reason as faultSeedSalt:
// arming the consistency layer must not perturb movement, query
// launching, the POI field, or any other layer's draws (and the listen
// stream stays off the schedule's own lossRng so the query path's loss
// sequence is untouched by IR traffic).
const (
	updateSeedSalt = 0x75706474 // "updt"
	irSeedSalt     = 0x69726c73 // "irls"
)

// maxUpdatesPerEpoch caps how many mutations one IR period may batch into
// a single epoch, keeping every IR frame within wire.MaxIRItems even at
// the full IRWindow retention. Poisson draws above the cap are clamped
// (at sane update rates the cap is orders of magnitude away).
const maxUpdatesPerEpoch = wire.MaxIRItems / 4

// consState is the server side of the consistency layer (DESIGN.md §12):
// the seeded update process, the per-type version state, and the loss
// stream for client IR listens. Nil when UpdateRate is zero — no state,
// no draws, and the zero-knob outputs stay bit-identical to the seed.
type consState struct {
	updRng  *rand.Rand
	lossRng *rand.Rand
	loss    float64 // BroadcastLoss applied to IR receptions
	// nextIRSec is the simulated time of the next IR broadcast tick.
	nextIRSec float64
	types     []typeConsState
}

// typeConsState is one data type's version state.
type typeConsState struct {
	// epoch is the monotone database version; it advances once per IR
	// period that saw at least one mutation.
	epoch int64
	// nextID is the next fresh POI id (inserts never reuse ids).
	nextID int64
	// records holds the last IRWindow epochs' mutation items — the
	// server-side memory the broadcast IR frame carries.
	records []epochRecord
	// horizon and invals mirror the *decoded* current IR frame: the
	// oldest epoch the frame retains and its items as cache
	// invalidations. Clients reconcile strictly from these, so the wire
	// codec is load-bearing, not decorative.
	horizon int64
	invals  []cache.Invalidation
	// frameBytes is the encoded size of the current IR frame.
	frameBytes int
}

// epochRecord is one epoch's batch of mutation items.
type epochRecord struct {
	epoch int64
	items []wire.IRItem
}

// newConsState builds the consistency state for an armed world.
func newConsState(p Params, types []typeState) *consState {
	c := &consState{
		updRng:    rand.New(rand.NewSource(p.Seed ^ updateSeedSalt)),
		lossRng:   rand.New(rand.NewSource(p.Seed ^ irSeedSalt)),
		loss:      p.Faults.Normalized().BroadcastLoss,
		nextIRSec: p.IRPeriodSec,
		types:     make([]typeConsState, len(types)),
	}
	for ti := range c.types {
		c.types[ti].nextID = int64(len(types[ti].db))
	}
	return c
}

// advanceConsistency runs every IR broadcast tick that has come due:
// mutations accumulate into one epoch per period and the refreshed IR
// frame goes on air. Called once per Step, before query launches, so
// every query of a step sees a settled epoch.
func (w *World) advanceConsistency() {
	c := w.cons
	if c == nil {
		return
	}
	for w.nowSec >= c.nextIRSec {
		for ti := range w.types {
			w.applyUpdates(ti)
		}
		c.nextIRSec += w.Params.IRPeriodSec
	}
}

// applyUpdates mutates one data type's POI set for one IR period and
// rebuilds its ground truth, broadcast schedule, and IR frame. The
// mutation mix is uniform over insert/delete/move; deletes and moves
// pick a uniform victim, inserts and moves draw a uniform fresh
// position. Every draw comes from the dedicated update stream.
func (w *World) applyUpdates(ti int) {
	c := w.cons
	ts := &w.types[ti]
	tc := &c.types[ti]
	mean := w.Params.UpdateRate / 60 * w.Params.IRPeriodSec
	n := mobility.Poisson(c.updRng, mean)
	if n > maxUpdatesPerEpoch {
		n = maxUpdatesPerEpoch
	}
	if n == 0 {
		return // quiet period: no epoch advance, no new frame
	}
	tc.epoch++
	curve := ts.sched.Curve()
	items := make([]wire.IRItem, 0, n)
	for i := 0; i < n; i++ {
		op := c.updRng.Intn(3)
		if len(ts.db) <= 1 && op != 0 {
			op = 0 // keep the database non-empty (the channel needs content)
		}
		switch op {
		case 1: // delete
			j := c.updRng.Intn(len(ts.db))
			id := ts.db[j].ID
			ts.db = append(ts.db[:j], ts.db[j+1:]...)
			items = append(items, wire.IRItem{Epoch: tc.epoch, Kind: wire.IRDelete, ID: id})
		case 2: // move
			j := c.updRng.Intn(len(ts.db))
			pos := geom.Pt(c.updRng.Float64()*w.Params.AreaMiles, c.updRng.Float64()*w.Params.AreaMiles)
			ts.db[j].Pos = pos
			cx, cy := curve.CellOf(pos)
			items = append(items, wire.IRItem{
				Epoch: tc.epoch, Kind: wire.IRMove, ID: ts.db[j].ID, Cell: curve.CellRect(cx, cy)})
		default: // insert
			pos := geom.Pt(c.updRng.Float64()*w.Params.AreaMiles, c.updRng.Float64()*w.Params.AreaMiles)
			id := tc.nextID
			tc.nextID++
			ts.db = append(ts.db, broadcast.POI{ID: id, Pos: pos})
			cx, cy := curve.CellOf(pos)
			items = append(items, wire.IRItem{
				Epoch: tc.epoch, Kind: wire.IRInsert, ID: id, Cell: curve.CellRect(cx, cy)})
		}
	}
	w.stats.POIUpdates += int64(n)
	w.stats.IRBroadcasts++
	w.mx.observeUpdates(int64(n))

	// Retain the last IRWindow epochs, bounded by the wire item limit
	// (dropping the oldest record raises the horizon — clients that far
	// behind demote instead of repairing).
	tc.records = append(tc.records, epochRecord{epoch: tc.epoch, items: items})
	for len(tc.records) > w.Params.IRWindow && len(tc.records) > 1 {
		tc.records = tc.records[1:]
	}
	total := 0
	for _, r := range tc.records {
		total += len(r.items)
	}
	for total > wire.MaxIRItems && len(tc.records) > 1 {
		total -= len(tc.records[0].items)
		tc.records = tc.records[1:]
	}

	// Rebuild the ground truth and the broadcast schedule at the new
	// epoch. The loss seed mixes the epoch in so each rebuilt channel has
	// an independent (but reproducible) error stream.
	rt := make([]rtree.Item, len(ts.db))
	for i, poi := range ts.db {
		rt[i] = rtree.Item{ID: poi.ID, Pos: poi.Pos}
	}
	ts.truth = rtree.Bulk(rt, 16)
	bcfg := ts.bcfg
	if bcfg.LossRate > 0 {
		bcfg.LossSeed ^= tc.epoch << 24
	}
	sched, err := broadcast.NewSchedule(ts.db, bcfg)
	if err != nil {
		// Cannot happen with a non-empty database; surface loudly if the
		// model drifts.
		if w.selfCheckErr == nil {
			w.selfCheckErr = fmt.Errorf("consistency: schedule rebuild at epoch %d: %w", tc.epoch, err)
		}
		return
	}
	ts.sched = sched

	// Assemble, encode, and decode the IR frame. The decoded view is what
	// clients reconcile from: a frame the codec rejects would take the
	// whole layer down, exactly as it should.
	flat := make([]wire.IRItem, 0, total)
	for _, r := range tc.records {
		flat = append(flat, r.items...)
	}
	ir := wire.InvalidationReport{Epoch: tc.epoch, Horizon: tc.records[0].epoch, Items: flat}
	enc, err := wire.EncodeInvalidationReport(ir)
	if err == nil {
		ir, err = wire.DecodeInvalidationReport(enc)
	}
	if err != nil {
		if w.selfCheckErr == nil {
			w.selfCheckErr = fmt.Errorf("consistency: IR frame at epoch %d: %w", tc.epoch, err)
		}
		return
	}
	tc.frameBytes = len(enc)
	tc.horizon = ir.Horizon
	tc.invals = tc.invals[:0]
	for _, it := range ir.Items {
		tc.invals = append(tc.invals, cache.Invalidation{
			Epoch: it.Epoch, Kind: cache.InvalKind(it.Kind), ID: it.ID, Cell: it.Cell})
	}
}

// syncIR is the client side of one query's consistency pass, run before
// peer collection: TTL-expire the host's own cache, and if the host has
// not heard the current epoch's IR yet, tune in for it (paying the listen
// latency) and reconcile the own cache against it. Returns the broadcast
// slots spent listening; zero (with zero draws) when the layer is off and
// the host is current.
func (w *World) syncIR(idx, ti int) int64 {
	h := &w.hosts[idx]
	w.expireTTL(h.caches[ti])
	c := w.cons
	if c == nil {
		return 0
	}
	tc := &c.types[ti]
	if h.irEpoch[ti] >= tc.epoch {
		return 0
	}
	if w.blackout.Down(idx, w.nowSec) {
		// The host sits in a blackout window: the downlink is dark and no
		// IR frame can be heard, in any mode. The host stays behind the
		// epoch and replays the missed reports at its first post-blackout
		// query — when the outage outlived the IR horizon, Reconcile
		// demotes or discards what it can no longer repair.
		w.stats.IRDeferred++
		return 0
	}
	var lost func() bool
	if c.loss > 0 {
		lost = func() bool {
			if c.lossRng.Float64() < c.loss {
				w.stats.IRListenRetries++
				return true
			}
			return false
		}
	}
	acc := w.types[ti].sched.ListenIR(w.slotNow(), lost)
	w.stats.IRListens++
	w.stats.IRListenSlots += acc.Latency
	w.mx.observeIRListen(acc.Latency)
	if acc.Abandoned {
		// Every IR replica within the wait bound was lost (sustained
		// outage the blackout schedule did not predict): the host learned
		// nothing, so it must neither reconcile against a frame it never
		// heard nor advance its epoch — only the spent slots are real.
		w.stats.IRListenAborts++
		return acc.Latency
	}
	rec := h.caches[ti].Reconcile(tc.epoch, tc.horizon, tc.invals, w.Params.IRDiscard)
	w.stats.VRsReconciled += int64(rec.Repaired)
	w.stats.VRsDiscarded += int64(rec.Discarded)
	w.mx.observeReconcile(rec)
	h.irEpoch[ti] = tc.epoch
	return acc.Latency
}

// expireTTL applies the VRTTLSec time-to-live to one cache. Lazy: caches
// are swept when their owner queries or serves, not on a global clock.
func (w *World) expireTTL(c *cache.Cache) {
	ttl := w.Params.VRTTLSec
	if ttl <= 0 {
		return
	}
	cutoff := int64(w.nowSec) - int64(ttl)
	if cutoff < 0 {
		return
	}
	if n := int64(c.ExpireBefore(cutoff)); n > 0 {
		w.stats.VRsExpired += n
		w.mx.observeExpired(n)
	}
}

// admitShared is the receiving client's consistency gate for one region a
// peer served (only reachable when the layer is armed): regions at the
// current epoch enter exact, superseded ones are surgically repaired from
// the current IR frame, and regions older than the repair horizon are
// demoted to the probabilistic path — served, but never exact. The legacy
// stale-rate fault rides the same path: an injector-stale region is
// assigned an epoch beyond the horizon, so "silently diverged" and
// "slept past the IR window" degrade identically (and without the
// breaker-feeding discard of the consistency-off path: staleness under
// an armed layer is amnestied, like the trust layer's stale verdict).
func (w *World) admitShared(peers []core.PeerData, id, ti int, r cache.Region, stale, trustStale bool) []core.PeerData {
	tc := &w.cons.types[ti]
	if stale {
		if trustStale {
			// The documented TrustStale hazard: the diverged region is
			// trusted at face value, claimed epoch included.
			pd := w.poisonRegion(core.PeerData{VR: r.Rect, POIs: r.POIs})
			w.qs.owners = append(w.qs.owners, id)
			return append(peers, pd)
		}
		r.Epoch = tc.horizon - 2
	}
	switch {
	case r.Epoch >= tc.epoch:
		w.qs.owners = append(w.qs.owners, id)
		return append(peers, core.PeerData{VR: r.Rect, POIs: r.POIs})
	case w.Params.IRDiscard:
		// Whole-discard ablation: any superseded region is thrown away.
		w.stats.VRsDiscarded++
		w.mx.observeReconcile(cache.Recon{Discarded: 1})
		return peers
	case r.Epoch >= tc.horizon-1:
		pieces, touched := cache.ReconcileRegion(r, tc.invals, tc.epoch)
		if pieces == nil {
			w.stats.VRsDiscarded++
			w.mx.observeReconcile(cache.Recon{Discarded: 1})
			return peers
		}
		if touched {
			w.stats.VRsReconciled++
			w.mx.observeReconcile(cache.Recon{Repaired: 1, Pieces: len(pieces)})
		}
		for _, p := range pieces {
			w.qs.owners = append(w.qs.owners, id)
			peers = append(peers, core.PeerData{VR: p.Rect, POIs: p.POIs})
		}
		return peers
	default:
		// Missed-IR window policy: too old to repair, never exact again —
		// but still probabilistic evidence (Lemma 3.2), not garbage.
		w.stats.VRsDemoted++
		w.mx.observeDemoted()
		w.qs.owners = append(w.qs.owners, id)
		return append(peers, core.PeerData{VR: r.Rect, POIs: r.POIs, Tainted: true})
	}
}

// Epoch returns the current database epoch of data type ti (zero when
// the consistency layer is off) — testing and tools.
func (w *World) Epoch(ti int) int64 {
	if w.cons == nil {
		return 0
	}
	return w.cons.types[ti].epoch
}
