package experiments

import (
	"fmt"
	"io"

	"lbsq/internal/metrics"
	"lbsq/internal/sim"
	"lbsq/internal/sweep"
)

// PhaseRow is one (parameter set, phase) cell of the per-phase latency
// breakdown: the distribution of one query phase's cost over every
// counted query of a metrics-enabled run. Channel phases are measured in
// broadcast slots, CPU phases in deterministic work units (regions
// merged, candidates examined) — see internal/metrics.Phase.
type PhaseRow struct {
	SetName string
	Phase   string
	Unit    string
	Count   uint64
	Mean    float64
	P50     float64
	P90     float64
	P99     float64
	Max     float64
}

// PhaseBreakdown runs one metrics-enabled kNN cell per Table 3 parameter
// set and extracts the per-phase span distributions from the final
// registry snapshot. Cells run through the sweep engine (bit-identical
// for every worker count); within a cell, observation draws no
// randomness, so the trajectory matches a metrics-off run of the same
// seed exactly.
func PhaseBreakdown(o Options) []PhaseRow {
	o.applyDefaults()
	sets := sim.ParameterSets()
	snaps := sweep.Map(sweep.Workers(o.Parallel), sets, func(_ int, base sim.Params) metrics.Snapshot {
		p := base.Scaled(o.SideMiles).WithDuration(o.DurationHours)
		p.TimeStepSec = o.TimeStepSec
		p.Seed = o.Seed
		if o.PrefillPerHost > 0 {
			p.PrefillQueriesPerHost = o.PrefillPerHost
		}
		p.Kind = sim.KNNQuery
		p.AcceptApproximate = true
		p.Metrics = true
		w, err := sim.NewWorld(p)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err)) // parameters are internal
		}
		w.Run()
		return w.Metrics().Snapshot()
	})

	var rows []PhaseRow
	for si, base := range sets {
		snap := snaps[si]
		for ph := metrics.Phase(0); ph < metrics.NumPhases; ph++ {
			name := "lbsq_phase_" + ph.String() + "_" + ph.Unit()
			h, ok := snap.Histogram(name)
			if !ok {
				continue
			}
			rows = append(rows, PhaseRow{
				SetName: base.Name,
				Phase:   ph.String(),
				Unit:    ph.Unit(),
				Count:   h.Count,
				Mean:    h.Mean,
				P50:     h.P50,
				P90:     h.P90,
				P99:     h.P99,
				Max:     h.Max,
			})
		}
	}
	return rows
}

// WritePhases prints the per-phase breakdown as an aligned text table
// (the EXPERIMENTS.md latency-breakdown table).
func WritePhases(w io.Writer, rows []PhaseRow) {
	fmt.Fprintln(w, "Per-phase query cost breakdown (kNN, per counted query)")
	fmt.Fprintf(w, "  %-20s %-16s %-6s %8s %10s %8s %8s %8s %8s\n",
		"Parameter set", "phase", "unit", "count", "mean", "p50", "p90", "p99", "max")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %-16s %-6s %8d %10.2f %8.0f %8.0f %8.0f %8.0f\n",
			r.SetName, r.Phase, r.Unit, r.Count, r.Mean, r.P50, r.P90, r.P99, r.Max)
	}
}
