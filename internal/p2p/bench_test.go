package p2p

import (
	"math/rand"
	"testing"

	"lbsq/internal/geom"
)

func benchNet(b *testing.B, hosts int) (*Network, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	n, err := NewNetwork(geom.NewRect(0, 0, 20, 20), 0.125)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < hosts; i++ {
		n.Update(i, geom.Pt(rng.Float64()*20, rng.Float64()*20))
	}
	return n, rng
}

func BenchmarkUpdate(b *testing.B) {
	n, rng := benchNet(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Update(i%10000, geom.Pt(rng.Float64()*20, rng.Float64()*20))
	}
}

func BenchmarkNeighbors200m(b *testing.B) {
	n, rng := benchNet(b, 10000)
	const radius = 200 / 1609.344
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(rng.Float64()*20, rng.Float64()*20)
		n.Neighbors(q, radius, i%10000)
	}
}
