package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: circle∩rect area is translation invariant.
func TestQuickCircleRectAreaTranslationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomPoint(rng, 5)
		r := 0.5 + rng.Float64()*3
		rect := randomRect(rng, 5)
		base := CircleRectArea(c, r, rect)
		shift := randomPoint(rng, 100)
		moved := CircleRectArea(c.Add(shift), r, Rect{
			Min: rect.Min.Add(shift),
			Max: rect.Max.Add(shift),
		})
		return math.Abs(base-moved) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: adding a rectangle to a union never shrinks its area, and the
// union area never exceeds the sum of member areas.
func TestQuickUnionAreaMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := NewRectUnion()
		var prev, sum float64
		for i := 0; i < 1+rng.Intn(6); i++ {
			r := randomRect(rng, 5)
			u2 := NewRectUnion(append(append([]Rect(nil), u.Rects()...), r)...)
			area := u2.Area()
			if area < prev-1e-9 {
				return false
			}
			sum += r.Area()
			if area > sum+1e-9 {
				return false
			}
			prev = area
			u = u2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: UnverifiedArea is monotone in radius and bounded by the disk.
func TestQuickUnverifiedAreaBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var rects []Rect
		for i := 0; i < rng.Intn(5); i++ {
			rects = append(rects, randomRect(rng, 4))
		}
		u := NewRectUnion(rects...)
		c := randomPoint(rng, 4)
		prev := 0.0
		for _, r := range []float64{0.5, 1, 2, 4} {
			a := u.UnverifiedArea(c, r)
			if a < 0 || a > math.Pi*r*r+1e-9 {
				return false
			}
			if a < prev-1e-9 {
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: SubtractRect of a union's own members leaves nothing, for any
// window inside the union.
func TestQuickSubtractSelfCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRect(rng, 5)
		// A window fully inside r is fully covered by covers=[r].
		w := Rect{
			Min: Pt(r.Min.X+rng.Float64()*r.Width()/2, r.Min.Y+rng.Float64()*r.Height()/2),
		}
		w.Max = Pt(
			w.Min.X+rng.Float64()*(r.Max.X-w.Min.X),
			w.Min.Y+rng.Float64()*(r.Max.Y-w.Min.Y),
		)
		return len(SubtractRect(w, []Rect{r})) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
