package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"lbsq/internal/geom"
)

func randomItems(rng *rand.Rand, n int, span float64) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			ID:  int64(i),
			Pos: geom.Pt(rng.Float64()*span, rng.Float64()*span),
		}
	}
	return items
}

// bruteKNN is the linear-scan reference.
func bruteKNN(items []Item, q geom.Point, k int) []Item {
	s := append([]Item(nil), items...)
	sort.Slice(s, func(i, j int) bool {
		di, dj := s[i].Pos.DistSq(q), s[j].Pos.DistSq(q)
		if di != dj {
			return di < dj
		}
		return s[i].ID < s[j].ID
	})
	if k > len(s) {
		k = len(s)
	}
	return s[:k]
}

func bruteWindow(items []Item, r geom.Rect) []Item {
	var out []Item
	for _, it := range items {
		if r.Contains(it.Pos) {
			out = append(out, it)
		}
	}
	return out
}

func sameIDSet(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int64]int{}
	for _, it := range a {
		m[it.ID]++
	}
	for _, it := range b {
		m[it.ID]--
	}
	for _, v := range m {
		if v != 0 {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New(8)
	if tr.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	if _, ok := tr.Bounds(); ok {
		t.Error("empty tree must have no bounds")
	}
	if got := tr.KNN(geom.Pt(0, 0), 3); got != nil {
		t.Errorf("empty KNN = %v", got)
	}
	if got := tr.Window(geom.NewRect(0, 0, 1, 1)); got != nil {
		t.Errorf("empty Window = %v", got)
	}
	if got := tr.All(); got != nil {
		t.Errorf("empty All = %v", got)
	}
	if tr.Delete(1, geom.Pt(0, 0)) {
		t.Error("delete from empty tree must fail")
	}
}

func TestInsertSmall(t *testing.T) {
	tr := New(4)
	pts := []geom.Point{
		geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(3, 3),
		geom.Pt(10, 10), geom.Pt(11, 11), geom.Pt(0, 5),
	}
	for i, p := range pts {
		tr.Insert(Item{ID: int64(i), Pos: p})
	}
	if tr.Len() != len(pts) {
		t.Fatalf("Len = %d", tr.Len())
	}
	b, ok := tr.Bounds()
	if !ok || b != geom.NewRect(0, 1, 11, 11) {
		t.Fatalf("Bounds = %v", b)
	}
	got := tr.KNN(geom.Pt(0, 0), 2)
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("KNN = %v", got)
	}
}

func TestInsertVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 500, 100)
	tr := New(8)
	for _, it := range items {
		tr.Insert(it)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 50; trial++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		k := 1 + rng.Intn(10)
		got := tr.KNN(q, k)
		want := bruteKNN(items, q, k)
		for i := range got {
			if got[i].Pos.Dist(q) != want[i].Pos.Dist(q) {
				t.Fatalf("trial %d: KNN distance mismatch at %d: %v vs %v",
					trial, i, got[i], want[i])
			}
		}
	}
}

func TestBulkVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randomItems(rng, 1000, 50)
	tr := Bulk(items, 16)
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 50; trial++ {
		q := geom.Pt(rng.Float64()*50, rng.Float64()*50)
		k := 1 + rng.Intn(20)
		got := tr.KNN(q, k)
		want := bruteKNN(items, q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: KNN len %d want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Pos.Dist(q) != want[i].Pos.Dist(q) {
				t.Fatalf("trial %d: KNN mismatch", trial)
			}
		}
		// Results must be ascending.
		for i := 1; i < len(got); i++ {
			if got[i].Pos.Dist(q) < got[i-1].Pos.Dist(q) {
				t.Fatalf("trial %d: KNN not ascending", trial)
			}
		}
	}
}

func TestWindowVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randomItems(rng, 800, 50)
	tr := Bulk(items, 8)
	for trial := 0; trial < 60; trial++ {
		a := geom.Pt(rng.Float64()*50, rng.Float64()*50)
		b := geom.Pt(rng.Float64()*50, rng.Float64()*50)
		w := geom.NewRect(a.X, a.Y, b.X, b.Y)
		got := tr.Window(w)
		want := bruteWindow(items, w)
		if !sameIDSet(got, want) {
			t.Fatalf("trial %d: Window mismatch got %d want %d", trial, len(got), len(want))
		}
	}
}

func TestKNNDepthFirstMatchesBestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := randomItems(rng, 600, 40)
	tr := Bulk(items, 10)
	for trial := 0; trial < 40; trial++ {
		q := geom.Pt(rng.Float64()*40, rng.Float64()*40)
		k := 1 + rng.Intn(15)
		bf := tr.KNN(q, k)
		df := tr.KNNDepthFirst(q, k)
		if len(bf) != len(df) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(bf), len(df))
		}
		for i := range bf {
			if bf[i].Pos.Dist(q) != df[i].Pos.Dist(q) {
				t.Fatalf("trial %d: DF/BF mismatch at %d", trial, i)
			}
		}
	}
}

func TestKNNMoreThanSize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randomItems(rng, 7, 10)
	tr := Bulk(items, 4)
	got := tr.KNN(geom.Pt(5, 5), 100)
	if len(got) != 7 {
		t.Fatalf("KNN over-ask = %d items", len(got))
	}
	df := tr.KNNDepthFirst(geom.Pt(5, 5), 100)
	if len(df) != 7 {
		t.Fatalf("DF over-ask = %d items", len(df))
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := randomItems(rng, 300, 30)
	tr := New(6)
	for _, it := range items {
		tr.Insert(it)
	}
	// Delete half, in random order.
	perm := rng.Perm(len(items))
	deleted := map[int64]bool{}
	for _, idx := range perm[:150] {
		it := items[idx]
		if !tr.Delete(it.ID, it.Pos) {
			t.Fatalf("Delete(%d) failed", it.ID)
		}
		deleted[it.ID] = true
	}
	if tr.Len() != 150 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	// Deleted items are gone; survivors are present.
	all := tr.All()
	if len(all) != 150 {
		t.Fatalf("All after deletes = %d", len(all))
	}
	for _, it := range all {
		if deleted[it.ID] {
			t.Fatalf("deleted item %d still present", it.ID)
		}
	}
	// Queries still correct.
	var survivors []Item
	for _, it := range items {
		if !deleted[it.ID] {
			survivors = append(survivors, it)
		}
	}
	for trial := 0; trial < 20; trial++ {
		q := geom.Pt(rng.Float64()*30, rng.Float64()*30)
		got := tr.KNN(q, 5)
		want := bruteKNN(survivors, q, 5)
		for i := range got {
			if got[i].Pos.Dist(q) != want[i].Pos.Dist(q) {
				t.Fatalf("trial %d: post-delete KNN mismatch", trial)
			}
		}
	}
	// Delete non-existent.
	if tr.Delete(99999, geom.Pt(0, 0)) {
		t.Error("deleting unknown id must fail")
	}
}

func TestDeleteAll(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randomItems(rng, 64, 10)
	tr := New(4)
	for _, it := range items {
		tr.Insert(it)
	}
	for _, it := range items {
		if !tr.Delete(it.ID, it.Pos) {
			t.Fatalf("Delete(%d) failed", it.ID)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	// Tree is reusable.
	tr.Insert(Item{ID: 1, Pos: geom.Pt(1, 1)})
	if got := tr.KNN(geom.Pt(0, 0), 1); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("reuse KNN = %v", got)
	}
}

func TestDuplicatePositions(t *testing.T) {
	tr := New(4)
	for i := 0; i < 20; i++ {
		tr.Insert(Item{ID: int64(i), Pos: geom.Pt(1, 1)})
	}
	got := tr.KNN(geom.Pt(0, 0), 20)
	if len(got) != 20 {
		t.Fatalf("KNN with duplicates = %d", len(got))
	}
	w := tr.Window(geom.NewRect(0, 0, 2, 2))
	if len(w) != 20 {
		t.Fatalf("Window with duplicates = %d", len(w))
	}
}

func TestBulkSmallAndDegenerate(t *testing.T) {
	if tr := Bulk(nil, 8); tr.Len() != 0 {
		t.Error("Bulk(nil) must be empty")
	}
	one := Bulk([]Item{{ID: 1, Pos: geom.Pt(2, 3)}}, 8)
	if got := one.KNN(geom.Pt(0, 0), 1); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("single-item bulk KNN = %v", got)
	}
}

func TestHeightGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := New(4)
	if tr.Height() != 1 {
		t.Fatalf("empty height = %d", tr.Height())
	}
	for _, it := range randomItems(rng, 200, 50) {
		tr.Insert(it)
	}
	if tr.Height() < 3 {
		t.Errorf("height after 200 inserts at fan-out 4 = %d, expected >= 3", tr.Height())
	}
}

func TestDefaultMaxEntries(t *testing.T) {
	tr := New(0)
	if tr.maxEntries != DefaultMaxEntries {
		t.Errorf("default fan-out = %d", tr.maxEntries)
	}
	rng := rand.New(rand.NewSource(9))
	items := randomItems(rng, 100, 10)
	for _, it := range items {
		tr.Insert(it)
	}
	got := tr.KNN(geom.Pt(5, 5), 3)
	want := bruteKNN(items, geom.Pt(5, 5), 3)
	for i := range got {
		if got[i].Pos.Dist(geom.Pt(5, 5)) != want[i].Pos.Dist(geom.Pt(5, 5)) {
			t.Fatal("default fan-out KNN mismatch")
		}
	}
}

// Property: mixed insert/delete workload stays consistent with a model map.
func TestMixedWorkloadModelCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr := New(6)
	model := map[int64]geom.Point{}
	nextID := int64(0)
	for step := 0; step < 2000; step++ {
		if len(model) == 0 || rng.Float64() < 0.6 {
			p := geom.Pt(rng.Float64()*20, rng.Float64()*20)
			tr.Insert(Item{ID: nextID, Pos: p})
			model[nextID] = p
			nextID++
		} else {
			// Delete a random existing item.
			var id int64
			for k := range model {
				id = k
				break
			}
			if !tr.Delete(id, model[id]) {
				t.Fatalf("step %d: delete %d failed", step, id)
			}
			delete(model, id)
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("size drift: tree=%d model=%d", tr.Len(), len(model))
	}
	var items []Item
	for id, p := range model {
		items = append(items, Item{ID: id, Pos: p})
	}
	q := geom.Pt(10, 10)
	got := tr.KNN(q, 10)
	want := bruteKNN(items, q, 10)
	for i := range got {
		if got[i].Pos.Dist(q) != want[i].Pos.Dist(q) {
			t.Fatal("final KNN mismatch after mixed workload")
		}
	}
}
