package core

import (
	"math/rand"
	"testing"

	"lbsq/internal/broadcast"
	"lbsq/internal/faults"
	"lbsq/internal/geom"
	"lbsq/internal/trust"
)

// TestByzantinePeerCanPoisonVerification documents the trust model: NNV
// treats every shared verified region as a true promise (Section 3.2's
// honest-peer assumption). A peer that claims a region while omitting a
// POI inside it makes the querying host "verify" a wrong nearest
// neighbor — the failure the soundness invariant exists to prevent on
// the honest path. This is a property of the paper's design; the
// internal/trust subsystem closes it (see
// TestByzantinePeerCannotPoisonWithTrust, this test's regression pair),
// and this test pins that the *unscreened* path stays vulnerable — if it
// ever stops failing open, the trust layer's threat model is stale.
func TestByzantinePeerCanPoisonVerification(t *testing.T) {
	// Database: the true NN of q=(5,5) is o1 at (5,6).
	db := []broadcast.POI{
		{ID: 1, Pos: geom.Pt(5, 6)},
		{ID: 2, Pos: geom.Pt(5, 8)},
	}
	// The lying peer claims to know [0,10]² but omits o1.
	liar := PeerData{
		VR:   geom.NewRect(0, 0, 10, 10),
		POIs: []broadcast.POI{db[1]},
	}
	res := NNV(geom.Pt(5, 5), []PeerData{liar}, 1, 0.1)
	es := res.Heap.Entries()
	if len(es) != 1 {
		t.Fatalf("heap len = %d", len(es))
	}
	// The wrong POI o2 is "verified": distance 3 <= clearance 5.
	if !es[0].Verified || es[0].POI.ID != 2 {
		t.Fatalf("expected the lie to verify o2; got %+v", es[0])
	}
}

// TestByzantinePeerCannotPoisonWithTrust is the regression pair of
// TestByzantinePeerCanPoisonVerification: the same lying peer, the same
// query — but screened through the trust layer first. Whether the lie is
// caught immediately (audited, convicted, contribution dropped) or not
// (unaudited, contribution tainted), the poisoned answer can no longer
// claim verification: the documented vulnerability is now gated.
func TestByzantinePeerCannotPoisonWithTrust(t *testing.T) {
	db := []broadcast.POI{
		{ID: 1, Pos: geom.Pt(5, 6)},
		{ID: 2, Pos: geom.Pt(5, 8)},
	}
	oracle := func(r geom.Rect) []broadcast.POI {
		var out []broadcast.POI
		for _, p := range db {
			if r.Contains(p.Pos) {
				out = append(out, p)
			}
		}
		return out
	}
	lie := trust.Contribution{
		Peer: 0,
		VR:   geom.NewRect(0, 0, 10, 10),
		POIs: []broadcast.POI{db[1]},
	}
	for name, rate := range map[string]float64{"audited": 1, "unaudited": 1e-9} {
		eng := trust.NewEngine(1, trust.Config{AuditRate: rate}, nil)
		screened, rep := eng.Screen([]trust.Contribution{lie}, oracle, -1)
		var peers []PeerData
		for _, r := range screened {
			peers = append(peers, PeerData{VR: r.VR, POIs: r.POIs, Tainted: r.Tainted})
		}
		res := NNV(geom.Pt(5, 5), peers, 1, 0.1)
		for _, e := range res.Heap.Entries() {
			if e.Verified {
				t.Fatalf("%s: trust-screened lie still verified %+v (report %+v)", name, e, rep)
			}
		}
		if rate == 1 {
			if rep.AuditFailures != 1 || len(screened) != 0 {
				t.Fatalf("audited lie not convicted: screened=%v rep=%+v", screened, rep)
			}
		} else if len(screened) != 1 || !screened[0].Tainted {
			t.Fatalf("unaudited lie not tainted: %+v", screened)
		}
	}
}

// TestByzantineSwarmCannotPoisonWithTrust generalizes the pair to the
// full attack-profile family: randomized worlds, a mix of honest and
// byzantine peers (every byzantine claim mangled by faults.AttackClaim),
// screened with audits on. Whatever survives screening, a verified entry
// must be the true nearest neighbor — lies may cost coverage (demotion
// to the probabilistic path), never correctness.
func TestByzantineSwarmCannotPoisonWithTrust(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	attacks := []faults.Attack{faults.AttackFabricate, faults.AttackOmit,
		faults.AttackInflate, faults.AttackShift, faults.AttackMix}
	for trial := 0; trial < 200; trial++ {
		n := 10 + rng.Intn(40)
		db := make([]broadcast.POI, n)
		for i := range db {
			db[i] = broadcast.POI{ID: int64(i), Pos: geom.Pt(rng.Float64()*10, rng.Float64()*10)}
		}
		oracle := func(r geom.Rect) []broadcast.POI {
			var out []broadcast.POI
			for _, p := range db {
				if r.Contains(p.Pos) {
					out = append(out, p)
				}
			}
			return out
		}
		attack := attacks[trial%len(attacks)]
		inj := faults.New(int64(trial), faults.Profile{ByzantineRate: 0.5, Attack: attack})
		eng := trust.NewEngine(int64(trial), trust.Config{AuditRate: 0.5}, nil)

		var contribs []trust.Contribution
		for i := 0; i < 1+rng.Intn(6); i++ {
			cx, cy := rng.Float64()*10, rng.Float64()*10
			vr := geom.NewRect(cx, cy, cx+rng.Float64()*5, cy+rng.Float64()*5)
			var pois []broadcast.POI
			for _, p := range db {
				if vr.Contains(p.Pos) {
					pois = append(pois, p)
				}
			}
			if rng.Float64() < 0.5 { // byzantine host
				vr, pois = inj.AttackClaim(vr, pois, attack)
			}
			contribs = append(contribs, trust.Contribution{Peer: i, VR: vr, POIs: pois})
		}
		q := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		// Screen repeatedly (vouching builds up) and check every round.
		for round := 0; round < 4; round++ {
			screened, _ := eng.Screen(contribs, oracle, -1)
			var peers []PeerData
			for _, r := range screened {
				peers = append(peers, PeerData{VR: r.VR, POIs: r.POIs, Tainted: r.Tainted})
			}
			res := NNV(q, peers, 1, 0.3)
			if res.Heap.VerifiedCount() == 0 {
				continue
			}
			got := res.Heap.Entries()[0]
			if !got.Verified {
				continue
			}
			bestD := -1.0
			for _, p := range db {
				if d := p.Pos.Dist(q); bestD < 0 || d < bestD {
					bestD = d
				}
			}
			if got.Dist != bestD || got.POI.ID >= faults.FabricatedIDBase {
				t.Fatalf("trial %d round %d attack %v: verified-wrong NN %+v (true d=%v)",
					trial, round, attack, got, bestD)
			}
		}
	}
}

// TestHonestPeersCannotPoison is the converse: with sound peers, no
// composition of regions can verify a wrong answer (randomized check).
func TestHonestPeersCannotPoison(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 300; trial++ {
		n := 10 + rng.Intn(40)
		db := make([]broadcast.POI, n)
		for i := range db {
			db[i] = broadcast.POI{ID: int64(i), Pos: geom.Pt(rng.Float64()*10, rng.Float64()*10)}
		}
		var peers []PeerData
		for i := 0; i < rng.Intn(5); i++ {
			cx, cy := rng.Float64()*10, rng.Float64()*10
			vr := geom.NewRect(cx, cy, cx+rng.Float64()*5, cy+rng.Float64()*5)
			pd := PeerData{VR: vr}
			for _, p := range db {
				if vr.Contains(p.Pos) {
					pd.POIs = append(pd.POIs, p)
				}
			}
			peers = append(peers, pd)
		}
		q := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		res := NNV(q, peers, 1, 0.3)
		if res.Heap.VerifiedCount() == 0 {
			continue
		}
		got := res.Heap.Entries()[0]
		bestD := -1.0
		for _, p := range db {
			if d := p.Pos.Dist(q); bestD < 0 || d < bestD {
				bestD = d
			}
		}
		if got.Dist != bestD {
			t.Fatalf("trial %d: honest peers verified a wrong NN (d=%v true=%v)",
				trial, got.Dist, bestD)
		}
	}
}
