package lbsq_test

import (
	"fmt"

	"lbsq"
)

// gridServer builds a deterministic server: POIs on a regular grid.
func gridServer() *lbsq.Server {
	area := lbsq.NewRect(0, 0, 16, 16)
	var pois []lbsq.POI
	id := int64(0)
	for x := 1.0; x < 16; x += 2 {
		for y := 1.0; y < 16; y += 2 {
			pois = append(pois, lbsq.POI{ID: id, Pos: lbsq.Pt(x, y)})
			id++
		}
	}
	srv, err := lbsq.NewServer(area, pois, lbsq.BroadcastConfig{Order: 4, PacketCapacity: 4})
	if err != nil {
		panic(err)
	}
	return srv
}

// ExampleClient_KNN shows the sharing flow: the first client pays the
// broadcast latency, the second verifies its answer from the first's
// cache with zero channel access.
func ExampleClient_KNN() {
	srv := gridServer()

	alice := lbsq.NewClient(srv, lbsq.Pt(8, 8), 50)
	first := alice.KNN(4, nil)
	fmt.Println("alice:", first.Outcome, "packets:", first.Access.PacketsRead > 0)

	bob := lbsq.NewClient(srv, lbsq.Pt(8.1, 8.1), 50)
	second := bob.KNN(2, alice.Share())
	fmt.Println("bob:  ", second.Outcome, "packets:", second.Access.PacketsRead > 0)
	fmt.Println("bob's nearest POI at distance",
		fmt.Sprintf("%.2f", second.POIs[0].Pos.Dist(bob.Pos())))
	// Output:
	// alice: broadcast packets: true
	// bob:   verified packets: false
	// bob's nearest POI at distance 1.27
}

// ExampleClient_Window shows a window query answered locally once the
// merged verified region covers the window.
func ExampleClient_Window() {
	srv := gridServer()

	scout := lbsq.NewClient(srv, lbsq.Pt(8, 8), 60)
	w := lbsq.NewRect(6, 6, 10, 10)
	first := scout.Window(w, nil)
	fmt.Println("scout:", first.Outcome, "POIs:", len(first.POIs))

	friend := lbsq.NewClient(srv, lbsq.Pt(7.5, 8.5), 60)
	second := friend.Window(w, scout.Share())
	fmt.Println("friend:", second.Outcome, "POIs:", len(second.POIs))
	// Output:
	// scout: broadcast POIs: 4
	// friend: verified POIs: 4
}

// ExampleCorrectnessProbability pins the paper's worked Lemma 3.2
// example: density 0.3 POIs per square unit, a 2-square-unit unverified
// region.
func ExampleCorrectnessProbability() {
	p := lbsq.CorrectnessProbability(0.3, 2)
	fmt.Printf("%.4f\n", p)
	// Output:
	// 0.5488
}
