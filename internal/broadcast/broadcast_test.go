package broadcast

import (
	"math/rand"
	"sort"
	"testing"

	"lbsq/internal/geom"
)

func testConfig() Config {
	return Config{
		Area:                geom.NewRect(0, 0, 64, 64),
		Order:               4, // 16x16 grid
		PacketCapacity:      4,
		M:                   4,
		IndexEntriesPerSlot: 8,
	}
}

func randomPOIs(rng *rand.Rand, n int, span float64) []POI {
	pois := make([]POI, n)
	for i := range pois {
		pois[i] = POI{ID: int64(i), Pos: geom.Pt(rng.Float64()*span, rng.Float64()*span)}
	}
	return pois
}

func mustSchedule(t *testing.T, pois []POI, cfg Config) *Schedule {
	t.Helper()
	s, err := NewSchedule(pois, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func bruteKNN(pois []POI, q geom.Point, k int) []POI {
	s := append([]POI(nil), pois...)
	sort.Slice(s, func(i, j int) bool {
		di, dj := s[i].Pos.DistSq(q), s[j].Pos.DistSq(q)
		if di != dj {
			return di < dj
		}
		return s[i].ID < s[j].ID
	})
	if k > len(s) {
		k = len(s)
	}
	return s[:k]
}

func kthDist(pois []POI, q geom.Point, k int) float64 {
	nn := bruteKNN(pois, q, k)
	if len(nn) == 0 {
		return 0
	}
	return nn[len(nn)-1].Pos.Dist(q)
}

func TestScheduleLayoutOneM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pois := randomPOIs(rng, 100, 64)
	s := mustSchedule(t, pois, testConfig())

	// Cell-granular packing: at capacity 4, 100 POIs need at least 25
	// packets, plus a few extra where a cell boundary forces an early
	// close.
	n := len(s.Packets())
	if n < 25 || n > 50 {
		t.Fatalf("packets = %d, want 25..50", n)
	}
	// Index slots = ceil(n / entriesPerSlot) with 8 entries per slot.
	wantIdx := (n + 7) / 8
	if s.IndexSlots() != wantIdx {
		t.Fatalf("index slots = %d want %d", s.IndexSlots(), wantIdx)
	}
	if s.M() != 4 {
		t.Fatalf("m = %d", s.M())
	}
	// Cycle = m index segments + one slot per packet.
	if want := int64(4*wantIdx + n); s.CycleLength() != want {
		t.Fatalf("cycle length = %d want %d", s.CycleLength(), want)
	}
	if s.TotalPOIs() != 100 {
		t.Fatalf("total POIs = %d", s.TotalPOIs())
	}
}

// TestCellGranularPacking pins the authority property the caches build
// on: no grid cell's POIs are ever split across packets.
func TestCellGranularPacking(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	pois := randomPOIs(rng, 400, 64)
	s := mustSchedule(t, pois, testConfig())
	owner := map[int64]int{} // cell value -> packet seq
	for _, p := range s.Packets() {
		for _, poi := range p.POIs {
			v := s.Curve().ValueOf(poi.Pos)
			if prev, ok := owner[v]; ok && prev != p.Seq {
				t.Fatalf("cell %d split across packets %d and %d", v, prev, p.Seq)
			}
			owner[v] = p.Seq
		}
	}
	// A cell denser than the capacity still lands in one packet.
	dense := make([]POI, 20)
	for i := range dense {
		dense[i] = POI{ID: int64(i), Pos: geom.Pt(1, 1)}
	}
	s2 := mustSchedule(t, dense, testConfig())
	if len(s2.Packets()) != 1 {
		t.Fatalf("dense cell spread over %d packets", len(s2.Packets()))
	}
	if len(s2.Packets()[0].POIs) != 20 {
		t.Fatalf("dense packet holds %d POIs", len(s2.Packets()[0].POIs))
	}
}

func TestCellComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pois := randomPOIs(rng, 200, 64)
	s := mustSchedule(t, pois, testConfig())
	// With every packet retrieved, every cell is complete.
	all := map[int]bool{}
	for _, p := range s.Packets() {
		all[p.Seq] = true
	}
	for x := 0; x < s.Curve().Side(); x++ {
		for y := 0; y < s.Curve().Side(); y++ {
			if !s.CellComplete(x, y, all) {
				t.Fatalf("cell (%d,%d) incomplete with full retrieval", x, y)
			}
		}
	}
	// With nothing retrieved, exactly the empty cells are complete.
	empty := map[int]bool{}
	for x := 0; x < s.Curve().Side(); x++ {
		for y := 0; y < s.Curve().Side(); y++ {
			hasPOI := false
			cell := s.Curve().CellRect(x, y)
			for _, p := range pois {
				if cell.Contains(p.Pos) {
					hasPOI = true
					break
				}
			}
			if got := s.CellComplete(x, y, empty); got == hasPOI {
				t.Fatalf("cell (%d,%d): complete=%v hasPOI=%v", x, y, got, hasPOI)
			}
		}
	}
}

func TestGrowCompleteRect(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pois := randomPOIs(rng, 300, 64)
	s := mustSchedule(t, pois, testConfig())
	seed := geom.NewRect(28, 28, 36, 36)

	// Retrieve everything: the rect grows to the area cap.
	var all []int
	for _, p := range s.Packets() {
		all = append(all, p.Seq)
	}
	grown := s.GrowCompleteRect(seed, all, 1200)
	if !grown.ContainsRect(seed) {
		t.Fatalf("grown %v does not contain seed", grown)
	}
	if grown.Area() <= seed.Area() {
		t.Fatalf("full retrieval did not grow the region: %v", grown)
	}
	if grown.Area() > 1200 {
		t.Fatalf("area cap violated: %v", grown.Area())
	}
	// Soundness: every cell inside the grown rect is complete.
	got := map[int]bool{}
	for _, seq := range all {
		got[seq] = true
	}
	x0, y0 := s.Curve().CellOf(grown.Min)
	x1, y1 := s.Curve().CellOf(grown.Max)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if !s.CellComplete(x, y, got) {
				t.Fatalf("incomplete cell inside grown rect")
			}
		}
	}

	// Retrieve nothing: a seed over non-empty cells stays put.
	grown2 := s.GrowCompleteRect(seed, nil, 1e9)
	if grown2 != seed {
		t.Fatalf("unretrieved seed grew: %v", grown2)
	}
	// Empty seed passes through.
	if s.GrowCompleteRect(geom.Rect{}, all, 1e9) != (geom.Rect{}) {
		t.Fatal("empty seed must pass through")
	}
}

func TestWindowReducedDetailed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pois := randomPOIs(rng, 300, 64)
	s := mustSchedule(t, pois, testConfig())
	w := geom.NewRect(10, 10, 30, 30)
	filtered, raw, retrieved, acc := s.WindowReducedDetailed([]geom.Rect{w}, 0)
	if len(raw) < len(filtered) {
		t.Fatalf("raw %d < filtered %d", len(raw), len(filtered))
	}
	if len(retrieved) != acc.PacketsRead {
		t.Fatalf("retrieved %d != PacketsRead %d", len(retrieved), acc.PacketsRead)
	}
	// raw is exactly the contents of the retrieved packets.
	count := 0
	for _, seq := range retrieved {
		count += len(s.Packets()[seq].POIs)
	}
	if count != len(raw) {
		t.Fatalf("raw %d != retrieved packet contents %d", len(raw), count)
	}
	for _, p := range filtered {
		if !w.Contains(p.Pos) {
			t.Fatal("filtered POI outside window")
		}
	}
}

func TestScheduleHilbertOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pois := randomPOIs(rng, 200, 64)
	s := mustSchedule(t, pois, testConfig())
	prev := int64(-1)
	for _, p := range s.Packets() {
		if p.First < prev {
			t.Fatalf("packet %d starts before previous packet's range", p.Seq)
		}
		if p.Last < p.First {
			t.Fatalf("packet %d has inverted range", p.Seq)
		}
		prev = p.Last
		// Every POI of the packet lies inside the packet region.
		for _, poi := range p.POIs {
			if !p.Region.Contains(poi.Pos) {
				t.Fatalf("packet %d: POI %v outside region %v", p.Seq, poi.Pos, p.Region)
			}
		}
	}
	// All POIs are broadcast exactly once.
	count := 0
	for _, p := range s.Packets() {
		count += len(p.POIs)
	}
	if count != 200 {
		t.Fatalf("broadcast POIs = %d", count)
	}
}

func TestNextIndexStartWraps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := mustSchedule(t, randomPOIs(rng, 40, 64), testConfig())
	cl := s.CycleLength()
	// From slot 0 the first index segment starts at 0.
	if got := s.nextIndexStart(0); got != 0 {
		t.Fatalf("nextIndexStart(0) = %d", got)
	}
	// Just past the last index segment, the next one is in the next cycle.
	lastStart := s.indexStarts[len(s.indexStarts)-1]
	got := s.nextIndexStart(lastStart + 1)
	if got != cl+s.indexStarts[0] {
		t.Fatalf("nextIndexStart(%d) = %d want %d", lastStart+1, got, cl+s.indexStarts[0])
	}
	// Absolute times in later cycles work too.
	if got := s.nextIndexStart(cl * 3); got != cl*3 {
		t.Fatalf("nextIndexStart at cycle boundary = %d", got)
	}
}

func TestOnAirKNNCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pois := randomPOIs(rng, 300, 64)
	s := mustSchedule(t, pois, testConfig())
	for trial := 0; trial < 40; trial++ {
		q := geom.Pt(rng.Float64()*64, rng.Float64()*64)
		k := 1 + rng.Intn(8)
		start := rng.Int63n(s.CycleLength() * 2)
		got, acc := s.KNN(q, k, start)
		// The retrieved set must contain the true k nearest.
		want := bruteKNN(pois, q, k)
		ids := map[int64]bool{}
		for _, p := range got {
			ids[p.ID] = true
		}
		for _, w := range want {
			if !ids[w.ID] {
				t.Fatalf("trial %d: true NN %d (d=%v) missing from on-air result",
					trial, w.ID, w.Pos.Dist(q))
			}
		}
		if acc.Latency <= 0 || acc.Tuning <= 0 || acc.PacketsRead == 0 {
			t.Fatalf("trial %d: degenerate access %+v", trial, acc)
		}
		if acc.IndexReads != 1 {
			t.Fatalf("trial %d: index reads = %d", trial, acc.IndexReads)
		}
	}
}

func TestOnAirKNNFewerPOIsThanK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pois := randomPOIs(rng, 5, 64)
	s := mustSchedule(t, pois, testConfig())
	got, _ := s.KNN(geom.Pt(32, 32), 10, 0)
	if len(got) != 5 {
		t.Fatalf("got %d POIs want all 5", len(got))
	}
}

func TestOnAirKNNEmptyFile(t *testing.T) {
	s := mustSchedule(t, nil, testConfig())
	got, acc := s.KNN(geom.Pt(1, 1), 3, 0)
	if got != nil {
		t.Fatalf("empty file KNN = %v", got)
	}
	if acc.IndexReads != 1 {
		t.Fatalf("index reads = %d", acc.IndexReads)
	}
	if s.CycleLength() < 1 {
		t.Fatal("cycle must contain at least the index segment")
	}
}

func TestKNNWithUpperBoundReducesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pois := randomPOIs(rng, 400, 64)
	s := mustSchedule(t, pois, testConfig())
	q := geom.Pt(32, 32)
	k := 5
	_, plain := s.KNN(q, k, 0)

	// A tight, valid upper bound: the true k-th NN distance.
	upper := kthDist(pois, q, k)
	got, bounded := s.KNNWithBounds(q, k, 0, Bounds{Upper: upper * 1.001})
	if bounded.PacketsRead > plain.PacketsRead {
		t.Errorf("upper bound increased packets: %d > %d", bounded.PacketsRead, plain.PacketsRead)
	}
	// Result must still contain the true kNN.
	want := bruteKNN(pois, q, k)
	ids := map[int64]bool{}
	for _, p := range got {
		ids[p.ID] = true
	}
	for _, w := range want {
		if !ids[w.ID] {
			t.Fatalf("true NN %d missing with upper bound", w.ID)
		}
	}
}

func TestKNNWithLowerBoundSkipsPackets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pois := randomPOIs(rng, 500, 64)
	s := mustSchedule(t, pois, testConfig())
	q := geom.Pt(32, 32)
	k := 20
	upper := kthDist(pois, q, k) * 1.01
	// Claim verified knowledge of everything within half the k-th
	// distance: packets wholly inside that circle are skipped.
	lower := upper / 2
	got, acc := s.KNNWithBounds(q, k, 0, Bounds{Upper: upper, Lower: lower})
	// Every true NN farther than lower must be present (POIs within lower
	// are the caller's verified knowledge).
	want := bruteKNN(pois, q, k)
	ids := map[int64]bool{}
	for _, p := range got {
		ids[p.ID] = true
	}
	for _, w := range want {
		if w.Pos.Dist(q) > lower && !ids[w.ID] {
			t.Fatalf("NN %d (d=%v > lower=%v) missing", w.ID, w.Pos.Dist(q), lower)
		}
	}
	if acc.PacketsSkipped == 0 {
		t.Log("no packets skipped (geometry-dependent); acceptable but unusual")
	}
}

func TestOnAirWindowCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pois := randomPOIs(rng, 300, 64)
	s := mustSchedule(t, pois, testConfig())
	for trial := 0; trial < 40; trial++ {
		a := geom.Pt(rng.Float64()*64, rng.Float64()*64)
		w := geom.NewRect(a.X, a.Y, a.X+rng.Float64()*20, a.Y+rng.Float64()*20)
		start := rng.Int63n(s.CycleLength())
		got, _ := s.Window(w, start)
		wantCount := 0
		for _, p := range pois {
			if w.Contains(p.Pos) {
				wantCount++
			}
		}
		if len(got) != wantCount {
			t.Fatalf("trial %d: window got %d want %d", trial, len(got), wantCount)
		}
		for _, p := range got {
			if !w.Contains(p.Pos) {
				t.Fatalf("trial %d: POI outside window returned", trial)
			}
		}
	}
}

func TestWindowReducedFiltersAndFetchesLess(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pois := randomPOIs(rng, 400, 64)
	s := mustSchedule(t, pois, testConfig())
	w := geom.NewRect(10, 10, 40, 40)
	_, full := s.Window(w, 0)
	// Pretend the left half is already verified: only the right half
	// needs the channel.
	reduced := geom.NewRect(25, 10, 40, 40)
	got, racc := s.WindowReduced([]geom.Rect{reduced}, 0)
	if racc.PacketsRead > full.PacketsRead {
		t.Errorf("reduced window read more packets: %d > %d", racc.PacketsRead, full.PacketsRead)
	}
	for _, p := range got {
		if !reduced.Contains(p.Pos) {
			t.Fatalf("POI outside reduced window returned")
		}
	}
	wantCount := 0
	for _, p := range pois {
		if reduced.Contains(p.Pos) {
			wantCount++
		}
	}
	if len(got) != wantCount {
		t.Fatalf("reduced window got %d want %d", len(got), wantCount)
	}
}

func TestWindowReducedEmptyWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := mustSchedule(t, randomPOIs(rng, 50, 64), testConfig())
	got, acc := s.WindowReduced(nil, 0)
	if len(got) != 0 || acc.PacketsRead != 0 {
		t.Fatalf("empty windows got %d POIs, %d packets", len(got), acc.PacketsRead)
	}
}

func TestLatencyAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pois := randomPOIs(rng, 120, 64)
	s := mustSchedule(t, pois, testConfig())
	q := geom.Pt(32, 32)
	// Latency from any start is bounded by two full cycles (index wait +
	// data wrap).
	for start := int64(0); start < s.CycleLength(); start += 3 {
		_, acc := s.KNN(q, 3, start)
		if acc.Latency > 2*s.CycleLength() {
			t.Fatalf("latency %d exceeds 2 cycles (%d)", acc.Latency, 2*s.CycleLength())
		}
		if acc.Tuning > acc.Latency {
			t.Fatalf("tuning %d exceeds latency %d", acc.Tuning, acc.Latency)
		}
	}
}

func TestMClampedToPacketCount(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfg := testConfig()
	cfg.M = 100                     // more replicas than packets
	pois := randomPOIs(rng, 10, 64) // 3 packets at capacity 4
	s := mustSchedule(t, pois, cfg)
	if s.M() > len(s.Packets()) {
		t.Fatalf("m = %d with only %d packets", s.M(), len(s.Packets()))
	}
}

func TestLargerMShortensIndexWait(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pois := randomPOIs(rng, 600, 64)
	mkCfg := func(m int) Config {
		c := testConfig()
		c.M = m
		return c
	}
	s1 := mustSchedule(t, pois, mkCfg(1))
	s8 := mustSchedule(t, pois, mkCfg(8))
	q := geom.Pt(32, 32)
	avg := func(s *Schedule) float64 { return s.ExpectedKNNLatency(q, 5, 32) }
	// More index replicas trade a longer cycle for shorter probe waits;
	// the probe component must shrink. We compare the average wait until
	// the index is in hand.
	wait := func(s *Schedule) float64 {
		total := 0.0
		const samples = 64
		for i := 0; i < samples; i++ {
			start := int64(i) * s.CycleLength() / samples
			_, acc := s.probeIndex(start)
			total += float64(acc.Latency)
		}
		return total / samples
	}
	if wait(s8) >= wait(s1) {
		t.Errorf("m=8 index wait %v not below m=1 wait %v", wait(s8), wait(s1))
	}
	_ = avg // exercised in benchmarks
}

func TestFullCycleAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	s := mustSchedule(t, randomPOIs(rng, 64, 64), testConfig())
	acc := s.FullCycleAccess(0)
	if acc.Latency != s.CycleLength() || acc.PacketsRead != len(s.Packets()) {
		t.Fatalf("full cycle access = %+v", acc)
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := NewSchedule(nil, Config{Area: geom.NewRect(0, 0, 1, 1), M: -1}); err == nil {
		t.Error("negative m must be rejected")
	}
	if _, err := NewSchedule(nil, Config{Area: geom.Rect{}}); err == nil {
		t.Error("empty area must be rejected")
	}
}

func TestLossyChannelStillCorrectButSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	pois := randomPOIs(rng, 300, 64)
	clean := mustSchedule(t, pois, testConfig())
	lossyCfg := testConfig()
	lossyCfg.LossRate = 0.4
	lossyCfg.LossSeed = 1
	lossy := mustSchedule(t, pois, lossyCfg)

	var cleanLat, lossyLat int64
	var retrans int
	for trial := 0; trial < 40; trial++ {
		q := geom.Pt(rng.Float64()*64, rng.Float64()*64)
		k := 1 + rng.Intn(6)
		wantIDs := map[int64]bool{}
		for _, p := range bruteKNN(pois, q, k) {
			wantIDs[p.ID] = true
		}
		for _, s := range []*Schedule{clean, lossy} {
			got, acc := s.KNN(q, k, int64(trial)*11)
			ids := map[int64]bool{}
			for _, p := range got {
				ids[p.ID] = true
			}
			for id := range wantIDs {
				if !ids[id] {
					t.Fatalf("loss=%v: true NN %d missing", s.lossRate, id)
				}
			}
			if s == clean {
				cleanLat += acc.Latency
				if acc.Retransmissions != 0 {
					t.Fatal("lossless channel reported retransmissions")
				}
			} else {
				lossyLat += acc.Latency
				retrans += acc.Retransmissions
			}
		}
	}
	if retrans == 0 {
		t.Fatal("40% loss produced no retransmissions")
	}
	if lossyLat <= cleanLat {
		t.Errorf("lossy latency %d not above clean %d", lossyLat, cleanLat)
	}
}

func TestLossRateClamped(t *testing.T) {
	cfg := testConfig()
	cfg.LossRate = 5 // would loop forever unclamped
	rng := rand.New(rand.NewSource(41))
	s := mustSchedule(t, randomPOIs(rng, 50, 64), cfg)
	if s.lossRate > 0.95 {
		t.Fatalf("loss rate %v not clamped", s.lossRate)
	}
	// Query still terminates.
	if got, _ := s.KNN(geom.Pt(32, 32), 3, 0); len(got) == 0 {
		t.Fatal("query under max loss returned nothing")
	}
	cfg.LossRate = -1
	s2 := mustSchedule(t, randomPOIs(rng, 50, 64), cfg)
	if s2.lossRate != 0 {
		t.Fatalf("negative loss rate = %v", s2.lossRate)
	}
}

func TestTreeIndexReducesTuning(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pois := randomPOIs(rng, 600, 64)
	flatCfg := testConfig()
	flat := mustSchedule(t, pois, flatCfg)
	treeCfg := testConfig()
	treeCfg.TreeIndex = true
	tree := mustSchedule(t, pois, treeCfg)

	var flatTuning, treeTuning, flatLat, treeLat int64
	for trial := 0; trial < 40; trial++ {
		q := geom.Pt(rng.Float64()*64, rng.Float64()*64)
		gotF, accF := flat.KNN(q, 5, int64(trial)*13)
		gotT, accT := tree.KNN(q, 5, int64(trial)*13)
		if len(gotF) != len(gotT) {
			t.Fatalf("trial %d: result sizes differ", trial)
		}
		flatTuning += accF.Tuning
		treeTuning += accT.Tuning
		flatLat += accF.Latency
		treeLat += accT.Latency
	}
	if treeTuning >= flatTuning {
		t.Errorf("tree index tuning %d not below flat %d", treeTuning, flatTuning)
	}
	if treeLat != flatLat {
		t.Errorf("tree index changed latency: %d vs %d", treeLat, flatLat)
	}
}
