// Byzantine attack profiles: the adversarial half of the trust layer
// (internal/trust holds the defense). Where faults.go models a lossy but
// honest substrate — every fault removes information — the attack
// profiles model *lying peers*: hosts that fabricate information their
// cache never held. A fabricated verified region passes the wire CRC and
// arrives on time, so neither the fault layer nor the breaker lifecycle
// can catch it; it poisons Lemma 3.1 verification directly (see
// internal/core/byzantine_test.go).
//
// The adversary model is deliberately the *strongest consistent liar*:
// byzantine status is a property of the host (assigned once, seeded, at
// world construction), and every claim a byzantine host makes is
// materially false — AttackClaim guarantees the returned (VR, POIs) pair
// disagrees with the truthful input on at least one POI membership or
// position. This is the worst case for the querying host (a peer that
// lies only sometimes is strictly easier to tolerate: its honest replies
// are honest), and it is what makes the trust layer's audit-gated
// vouching sound: any audit of any byzantine claim fails, so a byzantine
// peer can never become vouched, so its claims never enter the trusted
// verification path. See internal/trust and DESIGN.md §11.
package faults

import (
	"fmt"

	"lbsq/internal/broadcast"
	"lbsq/internal/geom"
)

// Attack selects the lie a byzantine peer tells about its cached
// verified region. AttackNone is the honest zero value.
type Attack int

const (
	// AttackNone: the peer is honest (zero value).
	AttackNone Attack = iota
	// AttackFabricate: the peer invents POIs that do not exist and
	// claims they are inside its verified region. The classic Lemma 3.1
	// poison: a fabricated POI close to the query point verifies as the
	// (wrong) nearest neighbor.
	AttackFabricate
	// AttackOmit: the peer hides a real POI from its verified region
	// while still claiming the region is fully verified. The *absence*
	// poison: NNV concludes "no closer POI exists in the VR" when one
	// does. Falls back to fabrication when the region holds no POI to
	// omit (an empty claim would be vacuously true, i.e. not a lie).
	AttackOmit
	// AttackInflate: the peer exaggerates its verified region — the VR
	// is expanded beyond what the peer actually verified, and a
	// fabricated POI is planted in the inflated ring so the exaggeration
	// is materially false rather than vacuously consistent.
	AttackInflate
	// AttackShift: the peer reports a real POI at a perturbed position,
	// corrupting both the distance ranking and the verification
	// geometry. Falls back to fabrication when the region holds no POI.
	AttackShift
	// AttackMix cycles deterministically through the four concrete
	// attacks per claim — the default adversary when a byzantine rate is
	// set without naming an attack.
	AttackMix
)

// String implements fmt.Stringer (and is the -attack flag spelling).
func (a Attack) String() string {
	switch a {
	case AttackFabricate:
		return "fabricate"
	case AttackOmit:
		return "omit"
	case AttackInflate:
		return "inflate"
	case AttackShift:
		return "shift"
	case AttackMix:
		return "mix"
	default:
		return "none"
	}
}

// ParseAttack parses the -attack flag spelling.
func ParseAttack(s string) (Attack, error) {
	switch s {
	case "", "none":
		return AttackNone, nil
	case "fabricate":
		return AttackFabricate, nil
	case "omit":
		return AttackOmit, nil
	case "inflate":
		return AttackInflate, nil
	case "shift":
		return AttackShift, nil
	case "mix":
		return AttackMix, nil
	default:
		return AttackNone, fmt.Errorf("faults: unknown attack %q (want none|fabricate|omit|inflate|shift|mix)", s)
	}
}

// FabricatedIDBase offsets the IDs of fabricated POIs far above any real
// database ID so ground-truth self-checks (and tests) can recognize an
// invented POI by inspection. Collisions with real IDs would let a
// fabrication masquerade as a stale copy of a real POI.
const FabricatedIDBase = int64(1) << 40

// InflateFactor is the fractional VR growth applied by AttackInflate
// (each side grows by this fraction of the half-extent).
const InflateFactor = 0.5

// ShiftFraction bounds AttackShift's position perturbation relative to
// the VR extent: large enough to corrupt distance rankings, small enough
// that the shifted POI plausibly stays near the region.
const ShiftFraction = 0.25

// minMaterialDelta is the floor on geometric perturbations so a lie stays
// material even when the verified region is degenerate (zero extent).
const minMaterialDelta = 1e-3

// AttackClaim applies the byzantine attack a to one shared claim — the
// (verified region, POI set) pair a peer is about to send — and returns
// the lied-about claim. The contract every branch upholds:
//
//   - The output is *materially false*: it disagrees with the truthful
//     input on at least one POI's existence or position. Attacks that
//     would be vacuously true on the given input (omitting from or
//     shifting within an empty POI set, inflating around nothing) fall
//     back to fabrication, so a byzantine claim is never accidentally
//     honest. This is what lets the trust layer's spot audits convict
//     from a single sample (see internal/trust).
//   - The input slice and rect are never modified; lied-about POI sets
//     are fresh copies (peers share views of their cache storage).
//   - Exactly one lie is counted (Counters.ByzantineLies) per call with
//     a concrete attack; AttackNone (or a nil injector) is the identity
//     and draws nothing.
//
// Parameter draws come from the injector's own stream, preserving the
// layer's invariant that enabling misbehavior never perturbs the
// simulation's randomness.
func (in *Injector) AttackClaim(vr geom.Rect, pois []broadcast.POI, a Attack) (geom.Rect, []broadcast.POI) {
	if in == nil || a == AttackNone {
		return vr, pois
	}
	seq := in.lieSeq
	in.lieSeq++
	if a == AttackMix {
		a = [...]Attack{AttackFabricate, AttackOmit, AttackInflate, AttackShift}[seq%4]
	}
	in.Counters.ByzantineLies++
	switch a {
	case AttackOmit:
		// Only a POI inside the claimed VR can be materially omitted:
		// hiding a POI the region never covered leaves the claim true.
		// (Cached POIs normally lie inside their VR, but boundary POIs
		// can round an ulp outside it.)
		inside := make([]int, 0, len(pois))
		for i, p := range pois {
			if vr.Contains(p.Pos) {
				inside = append(inside, i)
			}
		}
		if len(inside) == 0 {
			return vr, in.fabricateInto(vr, pois, seq)
		}
		drop := inside[in.rng.Intn(len(inside))]
		out := make([]broadcast.POI, 0, len(pois)-1)
		out = append(out, pois[:drop]...)
		out = append(out, pois[drop+1:]...)
		return vr, out
	case AttackInflate:
		grow := InflateFactor * (vr.Width() + vr.Height()) / 4
		if grow < minMaterialDelta {
			grow = minMaterialDelta
		}
		big := vr.Expand(grow)
		// Plant a fabricated POI in the inflated ring so the exaggerated
		// VR is a positive lie, not a vacuously empty claim: up to eight
		// uniform draws in the big rect, falling back to a corner of the
		// ring (always outside the original vr since grow > 0).
		p := big.Min
		for try := 0; try < 8; try++ {
			cand := geom.Pt(
				big.Min.X+in.rng.Float64()*big.Width(),
				big.Min.Y+in.rng.Float64()*big.Height(),
			)
			if !vr.Contains(cand) {
				p = cand
				break
			}
		}
		out := make([]broadcast.POI, 0, len(pois)+1)
		out = append(out, pois...)
		out = append(out, broadcast.POI{ID: FabricatedIDBase + seq, Pos: p})
		return big, out
	case AttackShift:
		if len(pois) == 0 {
			return vr, in.fabricateInto(vr, pois, seq)
		}
		idx := in.rng.Intn(len(pois))
		dx := ShiftFraction * vr.Width() * (2*in.rng.Float64() - 1)
		dy := ShiftFraction * vr.Height() * (2*in.rng.Float64() - 1)
		if dx < minMaterialDelta && dx > -minMaterialDelta &&
			dy < minMaterialDelta && dy > -minMaterialDelta {
			// Degenerate VR (or tiny draw): force a material displacement.
			dx, dy = minMaterialDelta, minMaterialDelta
		}
		out := append([]broadcast.POI(nil), pois...)
		out[idx].Pos = out[idx].Pos.Add(geom.Pt(dx, dy))
		return vr, out
	default: // AttackFabricate
		return vr, in.fabricateInto(vr, pois, seq)
	}
}

// fabricateInto appends one invented POI placed inside vr (at vr.Min for
// a degenerate rect) to a fresh copy of pois.
func (in *Injector) fabricateInto(vr geom.Rect, pois []broadcast.POI, seq int64) []broadcast.POI {
	p := vr.Min
	if !vr.Empty() {
		p = geom.Pt(
			vr.Min.X+in.rng.Float64()*vr.Width(),
			vr.Min.Y+in.rng.Float64()*vr.Height(),
		)
	}
	out := make([]broadcast.POI, 0, len(pois)+1)
	out = append(out, pois...)
	out = append(out, broadcast.POI{ID: FabricatedIDBase + seq, Pos: p})
	return out
}
