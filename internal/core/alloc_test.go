//go:build !race

// Steady-state allocation assertions for the scratch-based query hot
// path. Excluded under the race detector: -race instruments allocations
// and makes AllocsPerRun counts meaningless.

package core

import (
	"math/rand"
	"testing"

	"lbsq/internal/geom"
)

// TestNNVScratchZeroAllocs pins the core zero-allocation contract: a
// warm Scratch answers NNV without touching the heap allocator. The sim
// loop runs this path once per query over tens of thousands of hosts,
// so any regression here fails the build rather than silently costing
// GC time.
func TestNNVScratchZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := benchDB(rng, 500)
	peers := benchPeers(rng, db, 64)
	q := geom.Pt(16, 16)
	var s Scratch
	NNVScratch(&s, q, peers, 5, 0.5) // warm the scratch to capacity
	NNVScratch(&s, q, peers, 5, 0.5)
	allocs := testing.AllocsPerRun(50, func() {
		NNVScratch(&s, q, peers, 5, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("warm NNVScratch allocates %.1f times per run, want 0", allocs)
	}
}

// TestSBNNScratchSteadyAllocs bounds the warm SBNN path. A verified
// answer still allocates its KnownRegion POI copy (callers hand it to
// their cache, which retains it — see the PeerData contract), so the
// bound is the fresh result copy, not zero.
func TestSBNNScratchSteadyAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := benchDB(rng, 500)
	vr := geom.NewRect(8, 8, 24, 24)
	pd := PeerData{VR: vr}
	for _, p := range db {
		if vr.Contains(p.Pos) {
			pd.POIs = append(pd.POIs, p)
		}
	}
	peers := []PeerData{pd}
	cfg := SBNNConfig{K: 5, Lambda: 0.5}
	q := geom.Pt(16, 16)
	var s Scratch
	res := SBNNScratch(&s, q, peers, cfg, nil, 0)
	if res.Outcome != OutcomeVerified {
		t.Fatalf("outcome %v, want verified", res.Outcome)
	}
	allocs := testing.AllocsPerRun(50, func() {
		SBNNScratch(&s, q, peers, cfg, nil, 0)
	})
	// One allocation for the fresh Known slice is the by-design floor.
	if allocs > 2 {
		t.Fatalf("warm verified SBNNScratch allocates %.1f times per run, want <= 2", allocs)
	}
}
