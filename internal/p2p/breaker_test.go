package p2p

import "testing"

func newTestBreakers(t *testing.T, threshold int, cooldown int64) *BreakerSet {
	t.Helper()
	bs := NewBreakerSet(BreakerConfig{Threshold: threshold, Cooldown: cooldown})
	if bs == nil {
		t.Fatalf("breaker set nil for threshold=%d cooldown=%d", threshold, cooldown)
	}
	return bs
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	bs := newTestBreakers(t, 3, 5)
	const peer = 7

	// Two failures: still closed, still allowed.
	bs.RecordFailure(peer)
	bs.RecordFailure(peer)
	if got := bs.State(peer); got != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	if !bs.Allow(peer) {
		t.Fatal("closed breaker denied a request")
	}

	// Third consecutive failure trips.
	bs.RecordFailure(peer)
	if got := bs.State(peer); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if got := bs.Stats().Trips; got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	if err := bs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	bs := newTestBreakers(t, 3, 5)
	const peer = 1

	// failure, failure, success, failure, failure: never trips — the
	// threshold counts *consecutive* failures.
	bs.RecordFailure(peer)
	bs.RecordFailure(peer)
	bs.RecordSuccess(peer)
	bs.RecordFailure(peer)
	bs.RecordFailure(peer)
	if got := bs.State(peer); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (success resets streak)", got)
	}
	if got := bs.Stats().Trips; got != 0 {
		t.Fatalf("trips = %d, want 0", got)
	}
}

func TestBreakerShortCircuitsDuringCooldown(t *testing.T) {
	bs := newTestBreakers(t, 1, 3)
	const peer = 2
	bs.RecordFailure(peer) // threshold 1: trips immediately at cycle 0

	// Cycles 1 and 2 are inside the cooldown (reopenAt = 3).
	for i := 0; i < 2; i++ {
		bs.Tick()
		if bs.Allow(peer) {
			t.Fatalf("open breaker allowed a request at cycle %d", bs.Cycle())
		}
	}
	if got := bs.Stats().ShortCircuits; got != 2 {
		t.Fatalf("short-circuits = %d, want 2", got)
	}

	// Cycle 3 reaches reopenAt: the breaker half-opens and probes.
	bs.Tick()
	if !bs.Allow(peer) {
		t.Fatal("breaker denied the probe after cooldown")
	}
	if got := bs.State(peer); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown Allow = %v, want half-open", got)
	}
	if got := bs.Stats().Probes; got != 1 {
		t.Fatalf("probes = %d, want 1", got)
	}
}

func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	bs := newTestBreakers(t, 1, 1)
	const peer = 4
	bs.RecordFailure(peer)
	bs.Tick()
	if !bs.Allow(peer) {
		t.Fatal("probe denied")
	}
	bs.RecordSuccess(peer)
	if got := bs.State(peer); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if got := bs.Stats().Recoveries; got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
	if err := bs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerHalfOpenProbeFailureReTrips(t *testing.T) {
	bs := newTestBreakers(t, 2, 4)
	const peer = 9
	bs.RecordFailure(peer)
	bs.RecordFailure(peer) // trip at cycle 0, reopenAt 4
	for bs.Cycle() < 4 {
		bs.Tick()
	}
	if !bs.Allow(peer) {
		t.Fatal("probe denied after cooldown")
	}
	bs.RecordFailure(peer) // failed probe: immediate re-trip
	if got := bs.State(peer); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if got := bs.Stats().Trips; got != 2 {
		t.Fatalf("trips = %d, want 2 (initial + re-trip)", got)
	}
	// Fresh cooldown: quarantined again until cycle 8.
	bs.Tick()
	if bs.Allow(peer) {
		t.Fatal("re-tripped breaker allowed a request inside its fresh cooldown")
	}
	if got := bs.Stats().Recoveries; got != 0 {
		t.Fatalf("recoveries = %d, want 0", got)
	}
	if err := bs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBreakerLiveness pins the no-deadlock property: however many times a
// peer fails, the breaker always lets a probe through after each cooldown.
func TestBreakerLiveness(t *testing.T) {
	bs := newTestBreakers(t, 1, 2)
	const peer = 3
	probes := 0
	for round := 0; round < 50; round++ {
		bs.Tick()
		if bs.Allow(peer) {
			probes++
			bs.RecordFailure(peer) // every contact fails
		}
	}
	if probes < 10 {
		t.Fatalf("only %d probes in 50 cycles — quarantine is not bounded", probes)
	}
	if err := bs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerSuccessWithoutRecordAllocatesNothing(t *testing.T) {
	bs := newTestBreakers(t, 2, 4)
	bs.RecordSuccess(42)
	if got := bs.Tracked(); got != 0 {
		t.Fatalf("tracked = %d after success on unknown peer, want 0", got)
	}
	if !bs.Allow(42) {
		t.Fatal("unknown peer denied")
	}
}

func TestBreakerIndependentPeers(t *testing.T) {
	bs := newTestBreakers(t, 1, 10)
	bs.RecordFailure(1)
	bs.Tick()
	if bs.Allow(1) {
		t.Fatal("tripped peer 1 allowed")
	}
	if !bs.Allow(2) {
		t.Fatal("healthy peer 2 denied because peer 1 tripped")
	}
	if got := bs.Tracked(); got != 1 {
		t.Fatalf("tracked = %d, want 1 (records are lazy)", got)
	}
}

func TestBreakerNilSafety(t *testing.T) {
	var bs *BreakerSet
	if !bs.Allow(1) {
		t.Fatal("nil set denied a request")
	}
	bs.RecordSuccess(1)
	bs.RecordFailure(1)
	bs.Tick()
	if got := bs.State(1); got != BreakerClosed {
		t.Fatalf("nil state = %v, want closed", got)
	}
	if got := bs.Stats(); got != (BreakerStats{}) {
		t.Fatalf("nil stats = %+v, want zero", got)
	}
	if bs.Tracked() != 0 || bs.Cycle() != 0 {
		t.Fatal("nil set reports tracked peers or cycles")
	}
	if got := bs.Config(); got != (BreakerConfig{}) {
		t.Fatalf("nil config = %+v, want zero", got)
	}
	if err := bs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewBreakerSetDisabled(t *testing.T) {
	if bs := NewBreakerSet(BreakerConfig{}); bs != nil {
		t.Fatal("zero config built a breaker set")
	}
	if bs := NewBreakerSet(BreakerConfig{Cooldown: 5}); bs != nil {
		t.Fatal("cooldown without threshold built a breaker set")
	}
	if bs := NewBreakerSet(BreakerConfig{Threshold: -1}); bs != nil {
		t.Fatal("negative threshold built a breaker set")
	}
}

func TestBreakerConfigNormalized(t *testing.T) {
	got := BreakerConfig{Threshold: 3}.Normalized()
	if got.Cooldown != DefaultBreakerCooldown {
		t.Fatalf("cooldown = %d, want default %d", got.Cooldown, DefaultBreakerCooldown)
	}
	got = BreakerConfig{Threshold: 3, Cooldown: 2}.Normalized()
	if got.Cooldown != 2 {
		t.Fatalf("explicit cooldown rewritten to %d", got.Cooldown)
	}
	got = BreakerConfig{Threshold: -4, Cooldown: -2}.Normalized()
	if got.Threshold != 0 || got.Cooldown != 0 {
		t.Fatalf("negatives not clamped: %+v", got)
	}
	// Disabled config keeps cooldown zero (no phantom default).
	got = BreakerConfig{Cooldown: 0}.Normalized()
	if got.Cooldown != 0 {
		t.Fatalf("disabled config picked up a cooldown: %+v", got)
	}
}

func TestBreakerConfigValidate(t *testing.T) {
	if err := (BreakerConfig{Threshold: 3, Cooldown: 8}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (BreakerConfig{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if err := (BreakerConfig{Threshold: -1}).Validate(); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if err := (BreakerConfig{Cooldown: -1}).Validate(); err == nil {
		t.Fatal("negative cooldown accepted")
	}
}

func TestBreakerStateString(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "closed", // unknown defaults to closed
	}
	for state, want := range cases {
		if got := state.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", state, got, want)
		}
	}
}

// TestBreakerProbeDepartureInconclusive pins the intended interaction of
// a half-open probe with a churn departure: the target leaving mid-probe
// voids the probe instead of failing it. Re-tripping on a departure would
// extend the quarantine on zero evidence; under sustained churn an honest
// peer could be starved of parole indefinitely.
func TestBreakerProbeDepartureInconclusive(t *testing.T) {
	bs := newTestBreakers(t, 3, 4)
	const peer = 9

	// Trip the breaker, wait out the cooldown, send the probe.
	for i := 0; i < 3; i++ {
		bs.RecordFailure(peer)
	}
	for i := int64(0); i < 4; i++ {
		bs.Tick()
	}
	if !bs.Allow(peer) {
		t.Fatal("cooldown elapsed: probe must be allowed")
	}
	if got := bs.State(peer); got != BreakerHalfOpen {
		t.Fatalf("state after probe = %v, want half-open", got)
	}

	// The probed peer churns away: inconclusive, not a failed probe.
	bs.RecordDeparture(peer)
	if got := bs.State(peer); got != BreakerHalfOpen {
		t.Fatalf("state after probe-target departure = %v, want half-open (no re-trip)", got)
	}
	if got := bs.Stats().Trips; got != 1 {
		t.Fatalf("trips = %d, want 1 (departure must not re-trip)", got)
	}
	if got := bs.Stats().InconclusiveProbes; got != 1 {
		t.Fatalf("inconclusive probes = %d, want 1", got)
	}
	if err := bs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The breaker stays probe-able: the next Allow sends a fresh probe,
	// and a delivered probe reply still closes it.
	if !bs.Allow(peer) {
		t.Fatal("half-open breaker must allow a fresh probe after an inconclusive one")
	}
	bs.RecordSuccess(peer)
	if got := bs.State(peer); got != BreakerClosed {
		t.Fatalf("state after delivered probe = %v, want closed", got)
	}

	// Contrast: a *closed* breaker cannot distinguish departure from
	// silence, so RecordDeparture keeps the legacy strike accounting.
	const other = 11
	bs.RecordDeparture(other)
	bs.RecordDeparture(other)
	bs.RecordDeparture(other)
	if got := bs.State(other); got != BreakerOpen {
		t.Fatalf("closed-state departures = %v, want open (legacy strike accounting)", got)
	}

	// Nil safety.
	var nilBS *BreakerSet
	nilBS.RecordDeparture(3)
}
