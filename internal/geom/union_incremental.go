package geom

import "sort"

// Incremental maintenance of the disjoint decomposition.
//
// Insert and Remove repair the cached decomposition in place instead of
// invalidating it, so a RectUnion that evolves by small deltas (the
// memoized merged-verified-region shared across a tick's query batch)
// pays O(affected rows) per mutation instead of a full O(n·rows)
// rebuild.
//
// The repaired decomposition is bit-identical to a from-scratch
// Disjoint() over the same member multiset: the decomposition is a pure
// function of the multiset (distinct sorted edge coordinates plus a
// per-row coverage prefix sum), and the repair re-emits exactly the
// rows whose coordinate set or coverage changed, splicing them into the
// strip list at the canonical row-major position.
//
// Invariants while incValid holds:
//   - incXs/incYs are the sorted distinct member edge coordinates with
//     incXRef/incYRef counting member edges per coordinate (every
//     member contributes one reference to each of its four edges);
//   - incDiff is the full difference grid of Disjoint(): rows =
//     len(incYs)-1, width = len(incXs), entry [j][i] holding the signed
//     edge count at column i of row j;
//   - u.disjoint is the canonical decomposition and haveDisjoint is set.
//
// Add and Reset drop the state (incValid=false); the next Insert or
// Remove rebuilds it with one full pass.

// Insert adds r to the union and repairs the disjoint decomposition in
// place. Degenerate rectangles are ignored, exactly as in Add. On a
// union without incremental state (fresh, or mutated via Add/Reset) the
// first Insert performs one full build.
func (u *RectUnion) Insert(r Rect) {
	if r.Empty() || !r.Valid() {
		return
	}
	if !u.incValid || len(u.rects) == 0 {
		u.rects = append(u.rects, r)
		u.invalidate()
		u.buildInc()
		return
	}
	// The repaired y-range is bounded by the nearest pre-existing
	// coordinates enclosing the new rect: rows outside [loV, hiV) keep
	// both their coordinate span and their coverage.
	loV, loOK := predCoord(u.incYs, r.Min.Y)
	hiV, hiOK := succCoord(u.incYs, r.Max.Y)
	u.incAddX(r.Min.X)
	u.incAddX(r.Max.X)
	u.incAddY(r.Min.Y)
	u.incAddY(r.Max.Y)
	u.rects = append(u.rects, r)
	u.incApply(r, 1)
	u.incRepair(loV, loOK, hiV, hiOK)
}

// Remove deletes one member equal to r (the first in insertion order)
// and repairs the disjoint decomposition in place. It reports whether a
// member was removed. On a union without incremental state the member
// is spliced out and the caches are invalidated (rebuilt lazily).
func (u *RectUnion) Remove(r Rect) bool {
	if r.Empty() || !r.Valid() {
		return false
	}
	idx := -1
	for i, m := range u.rects {
		if m == r {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	if !u.incValid {
		u.rects = append(u.rects[:idx], u.rects[idx+1:]...)
		u.invalidate()
		return true
	}
	u.rects = append(u.rects[:idx], u.rects[idx+1:]...)
	if len(u.rects) == 0 {
		u.clearInc()
		return true
	}
	// Bound the repaired y-range by the nearest coordinates that
	// SURVIVE the removal: if r's own edge coordinate loses its last
	// reference the adjacent rows merge, so the repair must extend to
	// the surviving neighbor.
	loV, loOK := surviveLo(u.incYs, u.incYRef, r.Min.Y)
	hiV, hiOK := surviveHi(u.incYs, u.incYRef, r.Max.Y)
	u.incApply(r, -1)
	u.incRemoveX(r.Min.X)
	u.incRemoveX(r.Max.X)
	u.incRemoveY(r.Min.Y)
	u.incRemoveY(r.Max.Y)
	u.incRepair(loV, loOK, hiV, hiOK)
	return true
}

// buildInc performs the one full pass establishing the incremental
// state and the canonical decomposition. rects must be non-empty.
func (u *RectUnion) buildInc() {
	xs, ys := u.incXs[:0], u.incYs[:0]
	for _, r := range u.rects {
		xs = append(xs, r.Min.X, r.Max.X)
		ys = append(ys, r.Min.Y, r.Max.Y)
	}
	xs, u.incXRef = dedupSortedCounted(xs, u.incXRef[:0])
	ys, u.incYRef = dedupSortedCounted(ys, u.incYRef[:0])
	u.incXs, u.incYs = xs, ys
	w := len(xs)
	rows := len(ys) - 1
	n := rows * w
	if cap(u.incDiff) < n {
		u.incDiff = make([]int32, n)
	} else {
		u.incDiff = u.incDiff[:n]
		clear(u.incDiff)
	}
	for _, r := range u.rects {
		u.incApply(r, 1)
	}
	u.disjoint = u.incEmitRows(u.disjoint[:0], 0, rows)
	u.haveDisjoint = true
	u.haveBoundary = false
	u.boundIdx.built = false
	u.disjIdx.built = false
	u.incValid = true
}

// clearInc resets the union to the canonical empty state after the last
// member was removed, keeping every allocation.
func (u *RectUnion) clearInc() {
	u.incXs, u.incYs = u.incXs[:0], u.incYs[:0]
	u.incXRef, u.incYRef = u.incXRef[:0], u.incYRef[:0]
	u.incDiff = u.incDiff[:0]
	u.disjoint = u.disjoint[:0]
	u.haveDisjoint = true
	u.haveBoundary = false
	u.boundIdx.built = false
	u.disjIdx.built = false
	u.incValid = true
}

// incApply adds (sign=+1) or subtracts (sign=-1) one member's edge
// marks on the difference grid. Coordinates must be present in
// incXs/incYs.
func (u *RectUnion) incApply(r Rect, sign int32) {
	w := len(u.incXs)
	x0 := sort.SearchFloat64s(u.incXs, r.Min.X)
	x1 := sort.SearchFloat64s(u.incXs, r.Max.X)
	y0 := sort.SearchFloat64s(u.incYs, r.Min.Y)
	y1 := sort.SearchFloat64s(u.incYs, r.Max.Y)
	for row := y0; row < y1; row++ {
		u.incDiff[row*w+x0] += sign
		u.incDiff[row*w+x1] -= sign
	}
}

// incAddX references x coordinate v, splicing a zero column into the
// grid when the coordinate is new. A zero diff column leaves every
// row's prefix sum unchanged, so coverage is preserved exactly.
func (u *RectUnion) incAddX(v float64) {
	i := sort.SearchFloat64s(u.incXs, v)
	if i < len(u.incXs) && u.incXs[i] == v {
		u.incXRef[i]++
		return
	}
	rows := len(u.incYs) - 1
	oldW := len(u.incXs)
	buf := u.incGrid2[:0]
	if need := rows * (oldW + 1); cap(buf) < need {
		buf = make([]int32, 0, need)
	}
	for row := 0; row < rows; row++ {
		old := u.incDiff[row*oldW : (row+1)*oldW]
		buf = append(buf, old[:i]...)
		buf = append(buf, 0)
		buf = append(buf, old[i:]...)
	}
	u.incGrid2 = u.incDiff[:0]
	u.incDiff = buf
	u.incXs = insertF64(u.incXs, i, v)
	u.incXRef = insertI32(u.incXRef, i, 1)
}

// incAddY references y coordinate v. A new coordinate splits one row
// into two rows with identical diff content (or prepends/appends an
// all-zero row when v lies outside the current span).
func (u *RectUnion) incAddY(v float64) {
	j := sort.SearchFloat64s(u.incYs, v)
	if j < len(u.incYs) && u.incYs[j] == v {
		u.incYRef[j]++
		return
	}
	m := len(u.incYs) // old row count is m-1
	w := len(u.incXs)
	buf := u.incGrid2[:0]
	if need := m * w; cap(buf) < need {
		buf = make([]int32, 0, need)
	}
	switch j {
	case 0:
		for k := 0; k < w; k++ {
			buf = append(buf, 0)
		}
		buf = append(buf, u.incDiff...)
	case m:
		buf = append(buf, u.incDiff...)
		for k := 0; k < w; k++ {
			buf = append(buf, 0)
		}
	default:
		// Old row j-1 spanned [incYs[j-1], incYs[j]); it splits into
		// [incYs[j-1], v) and [v, incYs[j]) with identical coverage.
		buf = append(buf, u.incDiff[:j*w]...)
		buf = append(buf, u.incDiff[(j-1)*w:j*w]...)
		buf = append(buf, u.incDiff[j*w:]...)
	}
	u.incGrid2 = u.incDiff[:0]
	u.incDiff = buf
	u.incYs = insertF64(u.incYs, j, v)
	u.incYRef = insertI32(u.incYRef, j, 1)
}

// incRemoveX dereferences x coordinate v, dropping its column when the
// last reference goes. A reference count of zero means no remaining
// member has an edge there, so every entry of the column is zero and
// removing it preserves all prefix sums.
func (u *RectUnion) incRemoveX(v float64) {
	i := sort.SearchFloat64s(u.incXs, v)
	u.incXRef[i]--
	if u.incXRef[i] > 0 {
		return
	}
	rows := len(u.incYs) - 1
	oldW := len(u.incXs)
	buf := u.incGrid2[:0]
	if need := rows * (oldW - 1); cap(buf) < need {
		buf = make([]int32, 0, need)
	}
	for row := 0; row < rows; row++ {
		old := u.incDiff[row*oldW : (row+1)*oldW]
		buf = append(buf, old[:i]...)
		buf = append(buf, old[i+1:]...)
	}
	u.incGrid2 = u.incDiff[:0]
	u.incDiff = buf
	u.incXs = append(u.incXs[:i], u.incXs[i+1:]...)
	u.incXRef = append(u.incXRef[:i], u.incXRef[i+1:]...)
}

// incRemoveY dereferences y coordinate v, merging the adjacent rows
// when the last reference goes. With no member edge at v, a boundary
// row is all-zero (no member spans it) and an interior coordinate's two
// neighboring rows carry identical diffs (every member overlapping one
// spans both), so dropping one row is exact.
func (u *RectUnion) incRemoveY(v float64) {
	j := sort.SearchFloat64s(u.incYs, v)
	u.incYRef[j]--
	if u.incYRef[j] > 0 {
		return
	}
	m := len(u.incYs) // current row count is m-1
	w := len(u.incXs)
	dropRow := j
	if j == m-1 {
		dropRow = m - 2
	}
	buf := u.incGrid2[:0]
	if need := (m - 2) * w; cap(buf) < need {
		buf = make([]int32, 0, need)
	}
	buf = append(buf, u.incDiff[:dropRow*w]...)
	buf = append(buf, u.incDiff[(dropRow+1)*w:]...)
	u.incGrid2 = u.incDiff[:0]
	u.incDiff = buf
	u.incYs = append(u.incYs[:j], u.incYs[j+1:]...)
	u.incYRef = append(u.incYRef[:j], u.incYRef[j+1:]...)
}

// incRepair re-emits the strips of the rows in [loV, hiV) (unbounded on
// a side when the matching ok flag is false) and splices them over the
// old strips of that y-range. Both coordinates must exist in the
// post-mutation incYs; strips outside the range are untouched, so the
// result stays in canonical row-major order.
func (u *RectUnion) incRepair(loV float64, loOK bool, hiV float64, hiOK bool) {
	rows := len(u.incYs) - 1
	jLo, jHi := 0, rows
	s0, s1 := 0, len(u.disjoint)
	if loOK {
		jLo = sort.SearchFloat64s(u.incYs, loV)
		s0 = sort.Search(len(u.disjoint), func(i int) bool { return u.disjoint[i].Min.Y >= loV })
	}
	if hiOK {
		jHi = sort.SearchFloat64s(u.incYs, hiV)
		s1 = sort.Search(len(u.disjoint), func(i int) bool { return u.disjoint[i].Min.Y >= hiV })
	}
	u.incEmit = u.incEmitRows(u.incEmit[:0], jLo, jHi)
	u.disjoint = spliceRects(u.disjoint, s0, s1, u.incEmit)
	u.haveDisjoint = true
	u.haveBoundary = false
	u.boundIdx.built = false
	if u.disjIdx.built {
		// Keep the disjoint strip index live across repairs: it is a
		// pure function of the decomposition, so an eager rebuild here
		// matches what a lazy build over the same strips would produce.
		dis := u.disjoint
		u.disjIdx.build(len(dis), func(i int) (float64, float64) {
			return dis[i].Min.X, dis[i].Max.X
		})
	}
}

// incEmitRows appends the strips of grid rows [j0, j1) to dst, with the
// exact emission logic of Disjoint.
func (u *RectUnion) incEmitRows(dst []Rect, j0, j1 int) []Rect {
	w := len(u.incXs)
	nx := w - 1
	for j := j0; j < j1; j++ {
		row := u.incDiff[j*w : (j+1)*w]
		depth := int32(0)
		stripStart := -1
		for i := 0; i < w; i++ {
			depth += row[i]
			covered := i < nx && depth > 0
			if covered && stripStart < 0 {
				stripStart = i
			}
			if !covered && stripStart >= 0 {
				dst = append(dst, Rect{
					Min: Point{u.incXs[stripStart], u.incYs[j]},
					Max: Point{u.incXs[i], u.incYs[j+1]},
				})
				stripStart = -1
			}
		}
	}
	return dst
}

// predCoord returns the largest coordinate <= v in the sorted slice.
func predCoord(vs []float64, v float64) (float64, bool) {
	i := sort.SearchFloat64s(vs, v)
	if i < len(vs) && vs[i] == v {
		return v, true
	}
	if i > 0 {
		return vs[i-1], true
	}
	return 0, false
}

// succCoord returns the smallest coordinate >= v in the sorted slice.
func succCoord(vs []float64, v float64) (float64, bool) {
	i := sort.SearchFloat64s(vs, v)
	if i < len(vs) {
		return vs[i], true
	}
	return 0, false
}

// surviveLo returns the largest coordinate <= v that still exists after
// one reference to v is released.
func surviveLo(vs []float64, refs []int32, v float64) (float64, bool) {
	j := sort.SearchFloat64s(vs, v)
	if refs[j] > 1 {
		return v, true
	}
	if j > 0 {
		return vs[j-1], true
	}
	return 0, false
}

// surviveHi returns the smallest coordinate >= v that still exists
// after one reference to v is released.
func surviveHi(vs []float64, refs []int32, v float64) (float64, bool) {
	j := sort.SearchFloat64s(vs, v)
	if refs[j] > 1 {
		return v, true
	}
	if j+1 < len(vs) {
		return vs[j+1], true
	}
	return 0, false
}

// spliceRects replaces s[i:j] with repl, preserving order. The
// replacement must not alias s.
func spliceRects(s []Rect, i, j int, repl []Rect) []Rect {
	d := len(repl) - (j - i)
	if d <= 0 {
		copy(s[i:], repl)
		copy(s[i+len(repl):], s[j:])
		return s[:len(s)+d]
	}
	old := len(s)
	for k := 0; k < d; k++ {
		s = append(s, Rect{})
	}
	copy(s[i+len(repl):], s[j:old])
	copy(s[i:], repl)
	return s
}

// insertF64 inserts v at index i, shifting the tail right.
func insertF64(s []float64, i int, v float64) []float64 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// insertI32 inserts v at index i, shifting the tail right.
func insertI32(s []int32, i int, v int32) []int32 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// dedupSortedCounted sorts vs, removes duplicates in place, and records
// the multiplicity of each surviving value in refs.
func dedupSortedCounted(vs []float64, refs []int32) ([]float64, []int32) {
	sort.Float64s(vs)
	out := vs[:0]
	for _, v := range vs {
		if len(out) == 0 || v != out[len(out)-1] {
			out = append(out, v)
			refs = append(refs, 1)
		} else {
			refs[len(refs)-1]++
		}
	}
	return out, refs
}
