// Package analysis provides the probabilistic model of the sharing hit
// ratio (contribution (d) of the paper: "we evaluate our approach by a
// probabilistic analysis of the hit ratio in sharing").
//
// Model assumptions, stated explicitly so the analysis-vs-simulation
// experiment can interrogate them:
//
//  1. Mobile hosts form a planar Poisson field of density ρ, so the
//     number of peers inside the transmission disk πR² is Poisson with
//     mean ρπR².
//  2. POIs form a planar Poisson field of density λ; the k-th NN distance
//     is then concentrated near r_k = sqrt(k/(πλ)).
//  3. A peer's cache covers a square verified region of total area
//     A = CacheSize/λ (each cached POI accounts for ~1/λ of verified
//     area), centered at a point uniformly distributed inside the peer's
//     locality disk of radius D (how far its knowledge lags behind its
//     position).
//  4. Peers contribute independently.
//
// Under these assumptions the probability that at least one reachable
// peer can fully answer the query is 1 − exp(−ρπR² · p₁), where p₁ is the
// per-peer success probability computed from the margin geometry: a kNN
// query verifies only if the query point sits at least r_k inside a
// verified region; a window query only if the window fits entirely
// inside one.
package analysis

import (
	"fmt"
	"math"
)

// Model carries the densities and radio/cache parameters of a scenario.
// Distances are miles; densities are per square mile.
type Model struct {
	// MHDensity is the mobile-host density ρ.
	MHDensity float64
	// POIDensity is the POI density λ.
	POIDensity float64
	// TxRangeMiles is the transmission radius R.
	TxRangeMiles float64
	// CacheSize is the per-host cache capacity in POIs (CSize).
	CacheSize int
	// LocalityMiles is the radius D of the disk over which a peer's
	// cached knowledge is spread around its current position.
	LocalityMiles float64
}

// Validate reports parameter errors.
func (m Model) Validate() error {
	switch {
	case m.MHDensity < 0:
		return fmt.Errorf("analysis: negative MH density %v", m.MHDensity)
	case m.POIDensity <= 0:
		return fmt.Errorf("analysis: POI density %v must be positive", m.POIDensity)
	case m.TxRangeMiles < 0:
		return fmt.Errorf("analysis: negative transmission range %v", m.TxRangeMiles)
	case m.CacheSize < 0:
		return fmt.Errorf("analysis: negative cache size %d", m.CacheSize)
	case m.LocalityMiles <= 0:
		return fmt.Errorf("analysis: locality %v must be positive", m.LocalityMiles)
	}
	return nil
}

// ExpectedPeers returns ρπR², the mean number of peers inside the
// transmission disk.
func (m Model) ExpectedPeers() float64 {
	return m.MHDensity * math.Pi * m.TxRangeMiles * m.TxRangeMiles
}

// PeerCoverageArea returns the expected verified area A one peer's cache
// spans: CacheSize POIs at density λ cover about CacheSize/λ square
// miles, capped by the locality disk the knowledge is spread over.
func (m Model) PeerCoverageArea() float64 {
	a := float64(m.CacheSize) / m.POIDensity
	cap := math.Pi * m.LocalityMiles * m.LocalityMiles
	return math.Min(a, cap)
}

// KNNRadius returns r_k = sqrt(k/(πλ)), the expected k-th NN distance
// under a Poisson POI field.
func (m Model) KNNRadius(k int) float64 {
	if k < 1 {
		k = 1
	}
	return math.Sqrt(float64(k) / (math.Pi * m.POIDensity))
}

// SinglePeerKNNHitProb returns p₁ for a kNN query: the probability that
// one random peer's verified region contains the query point with at
// least r_k of clearance. With A modeled as a square of side L, the
// query point must fall in the (L−2r_k)² core, itself landing uniformly
// in the locality disk πD².
func (m Model) SinglePeerKNNHitProb(k int) float64 {
	side := math.Sqrt(m.PeerCoverageArea())
	core := side - 2*m.KNNRadius(k)
	if core <= 0 {
		return 0
	}
	p := core * core / (math.Pi * m.LocalityMiles * m.LocalityMiles)
	return math.Min(p, 1)
}

// SinglePeerWindowHitProb returns p₁ for a window query of the given side
// length: the window must fit entirely inside the peer's square region,
// leaving an (L−s)² placement core.
func (m Model) SinglePeerWindowHitProb(windowSide float64) float64 {
	side := math.Sqrt(m.PeerCoverageArea())
	core := side - windowSide
	if core <= 0 {
		return 0
	}
	p := core * core / (math.Pi * m.LocalityMiles * m.LocalityMiles)
	return math.Min(p, 1)
}

// KNNHitRatio returns the predicted fraction of kNN queries answered
// entirely by peers: 1 − exp(−E[peers]·p₁), the void probability of the
// thinned Poisson field of "helpful" peers.
func (m Model) KNNHitRatio(k int) float64 {
	return 1 - math.Exp(-m.ExpectedPeers()*m.SinglePeerKNNHitProb(k))
}

// WindowHitRatio returns the predicted fraction of window queries whose
// window is covered by a single peer's region.
func (m Model) WindowHitRatio(windowSide float64) float64 {
	return 1 - math.Exp(-m.ExpectedPeers()*m.SinglePeerWindowHitProb(windowSide))
}

// ProbAtLeastOnePeer returns 1 − exp(−ρπR²): the chance any peer at all
// is reachable — an upper bound on every hit ratio.
func (m Model) ProbAtLeastOnePeer() float64 {
	return 1 - math.Exp(-m.ExpectedPeers())
}
