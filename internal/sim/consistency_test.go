package sim

// System-level tests of the consistency layer (DESIGN.md §12): SelfCheck
// stays green at every churn × IR-period × loss grid point (staleness
// costs coverage, never correctness), the zero-knob configuration is
// invisible (no state, no draws, no new JSON keys), honest peers are
// never convicted for serving outdated caches, and surgical
// reconciliation preserves more exactness than whole-region discard at
// the same churn.

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// consParams builds a small dense world with the POI-update process
// armed. Own caches and prefill give the version layer cached state to
// invalidate from t=0.
func consParams(seed int64, kind QueryKind, updateRate, irPeriod float64, loss float64) Params {
	p := LACity().Scaled(1.5).WithDuration(0.1)
	p.Seed = seed
	p.TimeStepSec = 10
	p.Kind = kind
	p.PrefillQueriesPerHost = 10
	p.UseOwnCache = true
	p.UpdateRate = updateRate
	p.IRPeriodSec = irPeriod
	p.Faults.BroadcastLoss = loss
	return p
}

// TestConsistencySelfCheckGrid is the acceptance grid: at every
// UpdateRate × IRPeriod × broadcast-loss point, every exact answer must
// match the (mutating) R-tree ground truth. Churn may cost coverage,
// never correctness.
func TestConsistencySelfCheckGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation in -short mode")
	}
	seed := int64(1700)
	for _, kind := range []QueryKind{KNNQuery, WindowQuery} {
		for _, rate := range []float64{2, 10} {
			for _, period := range []float64{15, 45} {
				for _, loss := range []float64{0, 0.2} {
					seed++
					name := kind.String() + "/u" + strconv.FormatFloat(rate, 'f', -1, 64) +
						"/p" + strconv.FormatFloat(period, 'f', -1, 64) +
						"/l" + strconv.FormatFloat(loss, 'f', -1, 64)
					t.Run(name, func(t *testing.T) {
						p := consParams(seed, kind, rate, period, loss)
						w, s := runSoakWorld(t, p)
						if err := w.SelfCheckErr(); err != nil {
							t.Fatalf("self-check under churn: %v", err)
						}
						if s.POIUpdates == 0 || s.IRBroadcasts == 0 {
							t.Fatalf("update process idle: %+v", s)
						}
						if s.IRListens == 0 {
							t.Fatal("no host ever listened for an IR frame")
						}
						if loss == 0 && s.IRListenRetries != 0 {
							t.Fatalf("IR replica waits %d on a lossless channel", s.IRListenRetries)
						}
						if loss > 0 && s.IRListenRetries == 0 {
							t.Error("lossy channel never forced an IR replica wait")
						}
					})
				}
			}
		}
	}
}

// TestConsistencyZeroKnobInert pins the bit-identity contract at the
// layer boundary: UpdateRate 0 builds no consistency state, moves no
// counters, keeps the v2 report schema, and emits no consistency JSON
// keys.
func TestConsistencyZeroKnobInert(t *testing.T) {
	p := LACity().Scaled(1.5).WithDuration(0.05)
	p.Seed = 1800
	p.TimeStepSec = 10
	p.UseOwnCache = true
	p.PrefillQueriesPerHost = 5
	if p.ConsistencyEnabled() {
		t.Fatal("zero knobs report consistency enabled")
	}
	w, s := runSoakWorld(t, p)
	if w.Epoch(0) != 0 {
		t.Fatalf("epoch advanced with updates off: %d", w.Epoch(0))
	}
	if s.ConsistencyEvents() != 0 {
		t.Fatalf("consistency counters moved with the layer off: %+v", s)
	}
	rep := NewReport(p, s, true, 0)
	if rep.BenchSchema != BenchSchemaVersion {
		t.Fatalf("zero-knob schema %d, want %d", rep.BenchSchema, BenchSchemaVersion)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"update_rate", "ir_period_sec", "ir_window",
		"vr_ttl_sec", "ir_discard", "consistency_events", "POIUpdates", "VRsReconciled"} {
		if strings.Contains(string(raw), key) {
			t.Fatalf("zero-knob report leaks %q:\n%s", key, raw)
		}
	}

	// Determinism of the inert path.
	_, s2 := runSoakWorld(t, p)
	if s != s2 {
		t.Fatalf("zero-knob run not deterministic:\n%+v\nvs\n%+v", s, s2)
	}
}

// TestConsistencyArmedReportSchema checks armed rows announce themselves:
// bench_schema 3, the knob fields present with the defaults actually
// simulated, and the consistency counters in the stats block.
func TestConsistencyArmedReportSchema(t *testing.T) {
	p := consParams(1801, KNNQuery, 6, 0, 0) // period 0: defaults must fill
	_, s := runSoakWorld(t, p)
	rep := NewReport(p, s, true, 0)
	if rep.BenchSchema != BenchSchemaConsistency {
		t.Fatalf("armed schema %d, want %d", rep.BenchSchema, BenchSchemaConsistency)
	}
	if rep.IRPeriodSec != 30 || rep.IRWindow != 8 {
		t.Fatalf("armed row missing defaults: period=%v window=%d", rep.IRPeriodSec, rep.IRWindow)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"update_rate":6`, `"ir_period_sec":30`, `"ir_window":8`,
		`"consistency_events":`, `"POIUpdates":`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("armed report missing %s:\n%s", key, raw)
		}
	}
}

// TestConsistencyNoFalseConvictions is the trust-interaction acceptance
// invariant: under pure churn (no byzantine hosts) with the audit
// defense armed, version skew must never convict an honest peer — no
// audit failures, no conflicts, no quarantines. Skew shows up only as
// amnestied stale verdicts.
func TestConsistencyNoFalseConvictions(t *testing.T) {
	for _, kind := range []QueryKind{KNNQuery, WindowQuery} {
		p := consParams(1900, kind, 8, 20, 0)
		p.AuditRate = 0.6
		w, s := runSoakWorld(t, p)
		if err := w.SelfCheckErr(); err != nil {
			t.Fatalf("%v: self-check: %v", kind, err)
		}
		if s.POIUpdates == 0 {
			t.Fatalf("%v: no churn generated", kind)
		}
		if s.AuditsRun == 0 {
			t.Fatalf("%v: defense never audited", kind)
		}
		if s.AuditFailures != 0 || s.ConflictsDetected != 0 || s.PeersQuarantined != 0 {
			t.Fatalf("%v: churn convicted honest peers: failures=%d conflicts=%d quarantined=%d",
				kind, s.AuditFailures, s.ConflictsDetected, s.PeersQuarantined)
		}
	}
}

// TestConsistencyDegradesNotCorrupts compares a static world against the
// same world under churn: staleness may only reduce the verified share,
// and the churn run must actually exercise reconciliation and demotion.
func TestConsistencyDegradesNotCorrupts(t *testing.T) {
	static := consParams(2000, KNNQuery, 0, 0, 0)
	static.UpdateRate = 0
	_, ss := runSoakWorld(t, static)

	churn := consParams(2000, KNNQuery, 6, 20, 0)
	w, sc := runSoakWorld(t, churn)
	if err := w.SelfCheckErr(); err != nil {
		t.Fatalf("churn self-check: %v", err)
	}
	if sc.VRsReconciled == 0 {
		t.Fatal("churn run never reconciled a region")
	}
	if sc.VRsDemoted == 0 {
		t.Fatal("churn run never demoted a beyond-horizon region")
	}
	if sc.VerifiedPct() > ss.VerifiedPct() {
		t.Fatalf("churn increased verified share: %.2f%% > %.2f%%",
			sc.VerifiedPct(), ss.VerifiedPct())
	}
}

// TestSurgicalBeatsWholeDiscard is the tentpole's payoff invariant: at
// identical churn, surgically shrinking superseded regions preserves at
// least as much exactness as throwing them away whole (EXPERIMENTS.md
// quantifies the gap).
func TestSurgicalBeatsWholeDiscard(t *testing.T) {
	surgical := consParams(2100, KNNQuery, 4, 20, 0)
	wa, sa := runSoakWorld(t, surgical)
	if err := wa.SelfCheckErr(); err != nil {
		t.Fatalf("surgical self-check: %v", err)
	}

	discard := consParams(2100, KNNQuery, 4, 20, 0)
	discard.IRDiscard = true
	wb, sb := runSoakWorld(t, discard)
	if err := wb.SelfCheckErr(); err != nil {
		t.Fatalf("discard self-check: %v", err)
	}

	if sa.VRsReconciled == 0 {
		t.Fatal("surgical run never repaired a region")
	}
	if sb.VRsReconciled != 0 {
		t.Fatalf("discard ablation repaired %d regions", sb.VRsReconciled)
	}
	if sb.VRsDiscarded == 0 {
		t.Fatal("discard ablation never discarded a region")
	}
	if sa.VerifiedPct() < sb.VerifiedPct() {
		t.Fatalf("surgical reconciliation lost to whole-discard: %.2f%% < %.2f%%",
			sa.VerifiedPct(), sb.VerifiedPct())
	}
}

// TestStaleRateRidesVersionLayer re-expresses the legacy -stale-rate
// fault through the version layer: with updates armed, injector-stale
// regions are treated as superseded beyond the IR horizon — demoted
// evidence, not silent discards — so SelfCheck stays green and the
// legacy StaleVRs counter keeps ticking while the legacy discard path
// stays idle.
func TestStaleRateRidesVersionLayer(t *testing.T) {
	p := consParams(2200, KNNQuery, 4, 20, 0)
	p.Faults.StaleRate = 0.3
	w, s := runSoakWorld(t, p)
	if err := w.SelfCheckErr(); err != nil {
		t.Fatalf("self-check: %v", err)
	}
	if s.StaleVRs == 0 {
		t.Fatal("stale injector idle at rate 0.3")
	}
	if s.VRsDemoted == 0 {
		t.Fatal("injector-stale regions never demoted through the version layer")
	}

	// Consistency off: the same stale rate must still run the legacy
	// discard path bit-identically (covered byte-for-byte against the
	// pre-PR binary in CI; here: counters move, self-check green).
	legacy := p
	legacy.UpdateRate = 0
	legacy.IRPeriodSec = 0
	legacy.IRWindow = 0
	wl, sl := runSoakWorld(t, legacy)
	if err := wl.SelfCheckErr(); err != nil {
		t.Fatalf("legacy self-check: %v", err)
	}
	if sl.StaleVRs == 0 || sl.ConsistencyEvents() != 0 {
		t.Fatalf("legacy stale path misrouted: stale=%d consistency=%d",
			sl.StaleVRs, sl.ConsistencyEvents())
	}
}

// TestVRTTLStandsAlone: the TTL knob works without the update process —
// regions expire, the layer's other counters stay at zero, and the run
// stays sound.
func TestVRTTLStandsAlone(t *testing.T) {
	p := LACity().Scaled(1.5).WithDuration(0.1)
	p.Seed = 2300
	p.TimeStepSec = 10
	p.UseOwnCache = true
	p.PrefillQueriesPerHost = 10
	p.VRTTLSec = 60
	if p.ConsistencyEnabled() {
		t.Fatal("TTL alone must not arm the update process")
	}
	w, s := runSoakWorld(t, p)
	if err := w.SelfCheckErr(); err != nil {
		t.Fatalf("self-check: %v", err)
	}
	if s.VRsExpired == 0 {
		t.Fatal("TTL never expired a region")
	}
	if s.POIUpdates != 0 || s.IRListens != 0 || s.VRsReconciled != 0 || s.VRsDemoted != 0 {
		t.Fatalf("update-process counters moved with TTL only: %+v", s)
	}
	rep := NewReport(p, s, true, 0)
	if rep.BenchSchema != BenchSchemaConsistency {
		t.Fatalf("TTL row schema %d, want %d", rep.BenchSchema, BenchSchemaConsistency)
	}
}

// TestConsistencyDeterminism: identical seeds give identical stats with
// the full layer armed (mutations, IR loss draws, reconciliation, TTL).
func TestConsistencyDeterminism(t *testing.T) {
	p := consParams(2400, WindowQuery, 6, 15, 0.15)
	p.VRTTLSec = 90
	_, a := runSoakWorld(t, p)
	_, b := runSoakWorld(t, p)
	if a != b {
		t.Fatalf("armed consistency run not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}
