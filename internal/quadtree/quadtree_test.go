package quadtree

import (
	"math/rand"
	"testing"

	"lbsq/internal/geom"
)

func mustTree(t *testing.T, bounds geom.Rect, capacity int) *Tree {
	t.Helper()
	tr, err := New(bounds, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(geom.NewRect(0, 0, 0, 0), 4); err == nil {
		t.Error("empty bounds must be rejected")
	}
	tr := mustTree(t, geom.NewRect(0, 0, 10, 10), 0)
	if tr.capacity != DefaultCapacity {
		t.Errorf("default capacity = %d", tr.capacity)
	}
	if tr.Bounds() != geom.NewRect(0, 0, 10, 10) {
		t.Errorf("Bounds = %v", tr.Bounds())
	}
}

func TestInsertOutsideBounds(t *testing.T) {
	tr := mustTree(t, geom.NewRect(0, 0, 10, 10), 4)
	if err := tr.Insert(Item{ID: 1, Pos: geom.Pt(11, 5)}); err == nil {
		t.Error("insert outside bounds must fail")
	}
	if tr.Len() != 0 {
		t.Error("failed insert must not change size")
	}
}

func TestWindowVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := mustTree(t, geom.NewRect(0, 0, 100, 100), 4)
	items := make([]Item, 700)
	for i := range items {
		items[i] = Item{ID: int64(i), Pos: geom.Pt(rng.Float64()*100, rng.Float64()*100)}
		if err := tr.Insert(items[i]); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 700 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 60; trial++ {
		a := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		b := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		w := geom.NewRect(a.X, a.Y, b.X, b.Y)
		got := tr.Window(w)
		wantCount := 0
		for _, it := range items {
			if w.Contains(it.Pos) {
				wantCount++
			}
		}
		if len(got) != wantCount {
			t.Fatalf("trial %d: Window = %d want %d", trial, len(got), wantCount)
		}
		for _, it := range got {
			if !w.Contains(it.Pos) {
				t.Fatalf("trial %d: item %v outside window %v", trial, it, w)
			}
		}
	}
}

func TestNNVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := mustTree(t, geom.NewRect(0, 0, 50, 50), 6)
	items := make([]Item, 400)
	for i := range items {
		items[i] = Item{ID: int64(i), Pos: geom.Pt(rng.Float64()*50, rng.Float64()*50)}
		if err := tr.Insert(items[i]); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 60; trial++ {
		q := geom.Pt(rng.Float64()*50, rng.Float64()*50)
		got, ok := tr.NN(q)
		if !ok {
			t.Fatal("NN must succeed on non-empty tree")
		}
		bestD := -1.0
		for _, it := range items {
			if d := it.Pos.Dist(q); bestD < 0 || d < bestD {
				bestD = d
			}
		}
		if got.Pos.Dist(q) != bestD {
			t.Fatalf("trial %d: NN dist %v want %v", trial, got.Pos.Dist(q), bestD)
		}
	}
}

func TestNNEmpty(t *testing.T) {
	tr := mustTree(t, geom.NewRect(0, 0, 1, 1), 4)
	if _, ok := tr.NN(geom.Pt(0.5, 0.5)); ok {
		t.Error("NN on empty tree must report ok=false")
	}
}

func TestCoincidentPointsDoNotRecurseForever(t *testing.T) {
	tr := mustTree(t, geom.NewRect(0, 0, 1, 1), 2)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(Item{ID: int64(i), Pos: geom.Pt(0.3, 0.3)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.Window(geom.NewRect(0, 0, 1, 1))
	if len(got) != 100 {
		t.Fatalf("Window = %d", len(got))
	}
}

func TestAll(t *testing.T) {
	tr := mustTree(t, geom.NewRect(0, 0, 10, 10), 2)
	for i := 0; i < 25; i++ {
		p := geom.Pt(float64(i%5)*2+0.5, float64(i/5)*2+0.5)
		if err := tr.Insert(Item{ID: int64(i), Pos: p}); err != nil {
			t.Fatal(err)
		}
	}
	all := tr.All()
	if len(all) != 25 {
		t.Fatalf("All = %d", len(all))
	}
	seen := map[int64]bool{}
	for _, it := range all {
		if seen[it.ID] {
			t.Fatalf("duplicate id %d", it.ID)
		}
		seen[it.ID] = true
	}
}

func TestMortonRoundTrip(t *testing.T) {
	bounds := geom.NewRect(0, 0, 16, 16)
	for x := int64(0); x < 16; x++ {
		for y := int64(0); y < 16; y++ {
			p := geom.Pt(float64(x)+0.5, float64(y)+0.5)
			code := MortonCode(bounds, 4, p)
			gx, gy := MortonDecode(code)
			if gx != x || gy != y {
				t.Fatalf("Morton round trip (%d,%d) -> %d -> (%d,%d)", x, y, code, gx, gy)
			}
		}
	}
}

func TestMortonOrderBaseCase(t *testing.T) {
	bounds := geom.NewRect(0, 0, 2, 2)
	// Z-order on a 2x2 grid: (0,0)=0 (1,0)=1 (0,1)=2 (1,1)=3.
	want := map[[2]float64]int64{
		{0.5, 0.5}: 0, {1.5, 0.5}: 1, {0.5, 1.5}: 2, {1.5, 1.5}: 3,
	}
	for cell, code := range want {
		if got := MortonCode(bounds, 1, geom.Pt(cell[0], cell[1])); got != code {
			t.Errorf("MortonCode(%v) = %d want %d", cell, got, code)
		}
	}
}

func TestMortonClamping(t *testing.T) {
	bounds := geom.NewRect(0, 0, 8, 8)
	inside := MortonCode(bounds, 3, geom.Pt(7.9, 7.9))
	outside := MortonCode(bounds, 3, geom.Pt(100, 100))
	if inside != outside {
		t.Errorf("out-of-bounds point must clamp to border cell: %d vs %d", inside, outside)
	}
}

func TestMortonUniqueness(t *testing.T) {
	bounds := geom.NewRect(0, 0, 8, 8)
	seen := map[int64]bool{}
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			code := MortonCode(bounds, 3, geom.Pt(float64(x)+0.5, float64(y)+0.5))
			if seen[code] {
				t.Fatalf("duplicate Morton code %d", code)
			}
			seen[code] = true
		}
	}
	if len(seen) != 64 {
		t.Fatalf("expected 64 distinct codes, got %d", len(seen))
	}
}

func TestKNNVsBruteForceQuadtree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := mustTree(t, geom.NewRect(0, 0, 50, 50), 6)
	items := make([]Item, 500)
	for i := range items {
		items[i] = Item{ID: int64(i), Pos: geom.Pt(rng.Float64()*50, rng.Float64()*50)}
		if err := tr.Insert(items[i]); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 50; trial++ {
		q := geom.Pt(rng.Float64()*50, rng.Float64()*50)
		k := 1 + rng.Intn(10)
		got := tr.KNN(q, k)
		if len(got) != k {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), k)
		}
		// Brute force.
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = it.Pos.Dist(q)
		}
		sortFloats(dists)
		for i := range got {
			if got[i].Pos.Dist(q) != dists[i] {
				t.Fatalf("trial %d: rank %d dist %v want %v",
					trial, i, got[i].Pos.Dist(q), dists[i])
			}
		}
		// Ascending order.
		for i := 1; i < len(got); i++ {
			if got[i].Pos.Dist(q) < got[i-1].Pos.Dist(q) {
				t.Fatalf("trial %d: not ascending", trial)
			}
		}
	}
	// Over-ask and degenerate cases.
	if got := tr.KNN(geom.Pt(25, 25), 10000); len(got) != 500 {
		t.Fatalf("over-ask = %d", len(got))
	}
	if got := tr.KNN(geom.Pt(25, 25), 0); got != nil {
		t.Fatal("k=0 must return nil")
	}
	empty := mustTree(t, geom.NewRect(0, 0, 1, 1), 4)
	if got := empty.KNN(geom.Pt(0.5, 0.5), 3); got != nil {
		t.Fatal("empty tree KNN must return nil")
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
